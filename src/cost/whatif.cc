#include "cost/whatif.h"

#include <algorithm>
#include <cmath>

#include "cost/cost_cache.h"
#include "cost/schedule.h"
#include "mr/bloom_filter.h"

namespace stubby {

namespace {

constexpr double kMB = 1024.0 * 1024.0;

/// Estimated distinct count of the partition key from the branch's profile
/// (measured group cardinality when available, else the product of
/// per-field histogram distincts; 0 = unknown).
double EstimateDistinctKeys(const Branch& branch) {
  const auto& profile = branch.annotations.profile;
  if (!profile) return 0.0;
  if (profile->k2_distinct_groups > 0 &&
      branch.partition.partition_fields == branch.GroupFields()) {
    return profile->k2_distinct_groups;
  }
  double distinct = 1.0;
  bool any = false;
  for (const auto& f : branch.partition.partition_fields) {
    const KeyHistogram* h = profile->FindHistogram(f);
    if (h != nullptr && h->distinct > 0) {
      distinct *= static_cast<double>(h->distinct);
      any = true;
    }
  }
  return any ? distinct : 0.0;
}

/// Per-branch reduce-side distribution estimate.
struct ReduceDistribution {
  int nonempty = 1;
  double max_fraction = 1.0;  ///< of the branch's shuffle volume
};

ReduceDistribution EstimateReduceDistribution(const Branch& branch, int R) {
  ReduceDistribution d;
  const PartitionSpec& p = branch.partition;
  const auto& profile = branch.annotations.profile;
  if (p.type == PartitionType::kRange && !p.split_points.empty() &&
      p.partition_fields.size() == 1 && profile) {
    const KeyHistogram* h = profile->FindHistogram(p.partition_fields[0]);
    if (h != nullptr) {
      // Per-partition fractions from the histogram over the split points.
      double max_frac = 0.0;
      int nonempty = 0;
      double prev = h->min;
      int parts = static_cast<int>(p.split_points.size()) + 1;
      for (int i = 0; i <= static_cast<int>(p.split_points.size()); ++i) {
        double hi = (i < static_cast<int>(p.split_points.size()))
                        ? p.split_points[static_cast<size_t>(i)][0].AsDouble()
                        : h->max + 1.0;
        double frac = h->FractionInRange(prev, hi);
        if (frac > 0) ++nonempty;
        max_frac = std::max(max_frac, frac);
        prev = hi;
      }
      d.nonempty = std::max(1, nonempty);
      d.max_fraction = std::max(max_frac, 1.0 / parts);
      // Equi-width buckets cannot see single heavy-hitter keys; a hot key
      // is never split across partitions, so it lower-bounds the skew.
      d.max_fraction = std::max(d.max_fraction, h->max_key_fraction);
      return d;
    }
  }
  if (p.type == PartitionType::kRange && !p.split_points_from.empty()) {
    // Sampled split points approximate quantiles, but an atomic key's mass
    // is never split: the profiled key distribution bounds the balance.
    const KeyHistogram* h =
        (profile && p.partition_fields.size() == 1)
            ? profile->FindHistogram(p.partition_fields[0])
            : nullptr;
    if (h != nullptr) {
      d.nonempty = static_cast<int>(std::clamp(
          static_cast<double>(h->distinct), 1.0, static_cast<double>(R)));
      d.max_fraction = std::max(std::min(1.0, 1.2 / d.nonempty),
                                h->max_key_fraction);
    } else {
      d.nonempty = R;
      d.max_fraction = std::min(1.0, 1.2 / R);
    }
    return d;
  }
  // Hash partitioning: parallelism is bounded by the distinct key count,
  // and the largest partition carries the heavy-hitter group plus an
  // average share of the rest.
  double distinct = EstimateDistinctKeys(branch);
  if (distinct > 0.0) {
    // Balls-in-bins: the partitions actually hit by `distinct` keys.
    double hit = R * (1.0 - std::exp(-distinct / R));
    d.nonempty = static_cast<int>(
        std::clamp(hit, 1.0, static_cast<double>(R)));
  } else {
    d.nonempty = R;
  }
  double hot = 0.0;
  if (profile && branch.partition.partition_fields == branch.GroupFields()) {
    hot = profile->k2_max_group_fraction;
  } else if (profile && branch.partition.partition_fields.size() == 1) {
    const KeyHistogram* h =
        profile->FindHistogram(branch.partition.partition_fields[0]);
    if (h != nullptr) hot = h->max_key_fraction;
  }
  double base = 1.0 / static_cast<double>(d.nonempty);
  // Balls-in-bins max-load correction: with d keys over R partitions the
  // fullest partition holds about d/R + sqrt(2 d/R ln R) keys.
  double imbalance = 1.0;
  if (distinct > 0.0 && d.nonempty > 1) {
    double per = distinct / d.nonempty;
    imbalance = 1.0 + std::sqrt(2.0 * std::log(static_cast<double>(
                                     d.nonempty)) / std::max(1e-9, per));
  }
  d.max_fraction = std::min(
      1.0, std::max(hot + (1.0 - hot) * base, base * imbalance));
  return d;
}

}  // namespace

Result<JobDataflow> WhatIfEngine::PredictJob(
    const Plan& plan, const JobVertex& job,
    std::map<std::string, PredictedDataset>* datasets) const {
  (void)plan;
  JobDataflow df;
  df.job_id = job.id;
  const int R = job.map_only() ? 0 : job.EffectiveReduceTasks();
  df.num_reduce_tasks = R;
  df.output_compressed = job.config.compress_output;

  struct BranchAccum {
    double map_out_records = 0.0;
    double map_out_bytes = 0.0;
    int tasks = 0;  ///< map tasks whose pipelines include this branch
  };
  std::vector<BranchAccum> acc(job.branches.size());

  std::vector<InputGroup> groups = GroupBranchInputs(job);
  for (const InputGroup& g : groups) {
    auto it = datasets->find(g.dataset_id);
    if (it == datasets->end()) {
      return Status::FailedPrecondition("no size prediction for dataset '" +
                                        g.dataset_id + "'");
    }
    const PredictedDataset& pred = it->second;
    double frac = g.prune_partitions.empty() ? 1.0 : g.prune_fraction;
    double in_records = pred.records * frac;
    double in_bytes = pred.bytes * frac;
    double in_stored = pred.stored_bytes * frac;

    int tasks;
    double max_task_bytes;
    if (g.aligned) {
      tasks = g.prune_partitions.empty()
                  ? std::max(1, pred.partitions)
                  : static_cast<int>(g.prune_partitions.size());
      double skew_ratio =
          pred.max_partition_fraction * std::max(1, pred.partitions);
      max_task_bytes = (in_bytes / tasks) * std::max(1.0, skew_ratio);
    } else {
      tasks = std::max(
          1, static_cast<int>(
                 std::ceil(in_stored / (job.config.split_mb * kMB))));
      tasks = std::min(tasks, kMaxSimulatedMapTasks);
      max_task_bytes = in_bytes / tasks;
    }
    df.num_map_tasks += tasks;
    df.map_input_records += static_cast<uint64_t>(in_records);
    df.map_input_bytes += static_cast<uint64_t>(in_bytes);
    df.map_input_stored_bytes += static_cast<uint64_t>(in_stored);
    df.max_map_task_input_bytes =
        std::max(df.max_map_task_input_bytes,
                 static_cast<uint64_t>(max_task_bytes));
    df.pipelines_per_task = std::max(
        df.pipelines_per_task, static_cast<int>(g.subscribers.size()));

    // Fold each subscribing pipeline over this group's records. Stage
    // selectivities were profiled on the *unpruned* data; a pruned read
    // skips exactly the rows the filter would have discarded (that is the
    // pruning correctness argument), so record/byte flow folds from the
    // full volume while I/O and first-stage CPU see the pruned read.
    for (const auto& [bi, ii] : g.subscribers) {
      const BranchInput& input = job.branches[bi].inputs[ii];
      double recs = pred.records;
      double bytes = pred.bytes;
      double cpu_basis = in_records;
      for (const Stage& s : input.map_stages) {
        if (!s.stats) {
          return Status::FailedPrecondition(
              "stage '" + s.name() + "' of job '" + job.id +
              "' has no profiled statistics");
        }
        df.map_cpu_units += std::min(cpu_basis, recs) * s.stats->cpu_per_record;
        recs *= s.stats->record_selectivity;
        bytes *= s.stats->byte_selectivity;
        cpu_basis = recs;
        if (!s.tee_dataset.empty()) {
          df.tee_bytes += static_cast<uint64_t>(bytes);
          PredictedDataset tee;
          tee.records = recs;
          tee.bytes = bytes;
          tee.stored_bytes = bytes;
          tee.partitions = tasks;
          tee.max_partition_fraction = 1.0 / std::max(1, tasks);
          (*datasets)[s.tee_dataset] = tee;
        }
      }
      // An empty pipeline forwards exactly what was read.
      acc[bi].map_out_records += input.map_stages.empty() ? in_records : recs;
      acc[bi].map_out_bytes += input.map_stages.empty() ? in_bytes : bytes;
      acc[bi].tasks += tasks;
    }
  }

  // Merge-mode branches: co-aligned tasks over all inputs, per-input prefix
  // pipelines, then the merged stages over the combined stream.
  for (size_t bi = 0; bi < job.branches.size(); ++bi) {
    const Branch& b = job.branches[bi];
    if (!b.merge_mode()) continue;
    int tasks = 1;
    double merged_recs = 0.0;
    double merged_bytes = 0.0;
    double task_in_bytes = 0.0;   // avg per task, across inputs
    double max_task_bytes = 0.0;
    for (const BranchInput& input : b.inputs) {
      auto it = datasets->find(input.dataset_id);
      if (it == datasets->end()) {
        return Status::FailedPrecondition("no size prediction for dataset '" +
                                          input.dataset_id + "'");
      }
      const PredictedDataset& pred = it->second;
      double frac =
          input.prune_partitions.empty() ? 1.0 : input.prune_fraction;
      int in_tasks = input.prune_partitions.empty()
                         ? std::max(1, pred.partitions)
                         : static_cast<int>(input.prune_partitions.size());
      tasks = std::max(tasks, in_tasks);
      double in_records = pred.records * frac;
      double in_bytes = pred.bytes * frac;
      double in_stored = pred.stored_bytes * frac;
      df.map_input_records += static_cast<uint64_t>(in_records);
      df.map_input_bytes += static_cast<uint64_t>(in_bytes);
      df.map_input_stored_bytes += static_cast<uint64_t>(in_stored);
      task_in_bytes += in_bytes / in_tasks;
      double skew_ratio =
          pred.max_partition_fraction * std::max(1, pred.partitions);
      max_task_bytes += (in_bytes / in_tasks) * std::max(1.0, skew_ratio);

      double recs = pred.records;
      double bytes = pred.bytes;
      double cpu_basis = in_records;
      for (const Stage& s : input.map_stages) {
        if (!s.stats) {
          return Status::FailedPrecondition(
              "stage '" + s.name() + "' of job '" + job.id +
              "' has no profiled statistics");
        }
        df.map_cpu_units += std::min(cpu_basis, recs) * s.stats->cpu_per_record;
        recs *= s.stats->record_selectivity;
        bytes *= s.stats->byte_selectivity;
        cpu_basis = recs;
        if (!s.tee_dataset.empty()) {
          df.tee_bytes += static_cast<uint64_t>(bytes);
          PredictedDataset tee;
          tee.records = recs;
          tee.bytes = bytes;
          tee.stored_bytes = bytes;
          tee.partitions = in_tasks;
          tee.max_partition_fraction = 1.0 / std::max(1, in_tasks);
          (*datasets)[s.tee_dataset] = tee;
        }
      }
      merged_recs += input.map_stages.empty() ? in_records : recs;
      merged_bytes += input.map_stages.empty() ? in_bytes : bytes;
    }
    df.num_map_tasks += tasks;
    df.max_map_task_input_bytes =
        std::max(df.max_map_task_input_bytes,
                 static_cast<uint64_t>(max_task_bytes));
    // Fold the merged stages.
    double recs = merged_recs;
    double bytes = merged_bytes;
    for (const Stage& s : b.merged_map_stages) {
      if (!s.stats) {
        return Status::FailedPrecondition("stage '" + s.name() +
                                          "' of job '" + job.id +
                                          "' has no profiled statistics");
      }
      df.map_cpu_units += recs * s.stats->cpu_per_record;
      recs *= s.stats->record_selectivity;
      bytes *= s.stats->byte_selectivity;
      if (!s.tee_dataset.empty()) {
        df.tee_bytes += static_cast<uint64_t>(bytes);
        PredictedDataset tee;
        tee.records = recs;
        tee.bytes = bytes;
        tee.stored_bytes = bytes;
        tee.partitions = tasks;
        tee.max_partition_fraction = 1.0 / std::max(1, tasks);
        (*datasets)[s.tee_dataset] = tee;
      }
    }
    acc[bi].map_out_records = recs;
    acc[bi].map_out_bytes = bytes;
    acc[bi].tasks = tasks;
  }

  for (size_t bi = 0; bi < job.branches.size(); ++bi) {
    const Branch& b = job.branches[bi];
    double recs = acc[bi].map_out_records;
    double bytes = acc[bi].map_out_bytes;

    // Bloom predicate transfer: the pre-map build pass re-runs the build
    // input's map pipeline to hash its join keys — an extra scan of the
    // build input plus per-output-row hashing, then one filter written to
    // the DFS and fetched by every map task (priced in the phase model).
    // The probe stages themselves are ordinary map stages; their
    // est_pass_fraction selectivity already shrank the shuffle above.
    if (b.bloom) {
      const BranchInput& build = b.inputs[b.bloom->build_input];
      auto it = datasets->find(build.dataset_id);
      if (it != datasets->end()) {
        const PredictedDataset& pred = it->second;
        double frac =
            build.prune_partitions.empty() ? 1.0 : build.prune_fraction;
        double in_records = pred.records * frac;
        double b_recs = pred.records;
        double cpu_basis = in_records;
        double cpu = 0.0;
        for (const Stage& s : build.map_stages) {
          if (!s.stats) break;  // the fold above reported the error
          cpu += std::min(cpu_basis, b_recs) * s.stats->cpu_per_record;
          b_recs *= s.stats->record_selectivity;
          cpu_basis = b_recs;
        }
        double hashed = build.map_stages.empty() ? in_records : b_recs;
        df.bloom_build_records += static_cast<uint64_t>(hashed);
        df.bloom_build_bytes += static_cast<uint64_t>(pred.bytes * frac);
        df.bloom_build_cpu_units += cpu + hashed * kBloomHashCpuPerRecord;
        df.bloom_filter_bytes +=
            (uint64_t{1} << b.bloom->bits_log2) / 8;
      }
    }

    if (b.map_only()) {
      df.output_records += static_cast<uint64_t>(recs);
      df.output_bytes += static_cast<uint64_t>(bytes);
      PredictedDataset out;
      out.records = recs;
      out.bytes = bytes;
      out.stored_bytes =
          job.config.compress_output ? bytes * model_.cluster().compress_ratio
                                     : bytes;
      out.partitions = std::max(1, acc[bi].tasks);
      out.max_partition_fraction = 1.0 / out.partitions;
      (*datasets)[b.output_dataset] = out;
      continue;
    }

    df.map_output_records += static_cast<uint64_t>(recs);
    df.map_output_bytes += static_cast<uint64_t>(bytes);

    // Combine: modeled analytically — a map task emitting n records over G
    // distinct groups combines down to about G*(1-exp(-n/G)) records. The
    // executor uses the same model over observed quantities; estimation
    // error stems from the profiled group cardinality.
    double c_recs = recs;
    double c_bytes = bytes;
    if (job.config.use_combiner && b.combiner != nullptr &&
        b.annotations.profile) {
      const ProfileAnnotation& profile = *b.annotations.profile;
      double groups = profile.k2_distinct_groups;
      int tasks = std::max(1, acc[bi].tasks);
      if (groups > 0 && recs > 0) {
        double n = recs / tasks;
        double combined =
            std::min(n, groups * (1.0 - std::exp(-n / groups)));
        double ratio = std::min(1.0, combined / n);
        c_recs = recs * ratio;
        c_bytes = bytes * ratio;
      }
      df.combine_cpu_units += recs * profile.combine_cpu_per_record;
    }
    df.combine_output_records += static_cast<uint64_t>(c_recs);
    df.combine_output_bytes += static_cast<uint64_t>(c_bytes);
    df.reduce_input_records += static_cast<uint64_t>(c_recs);
    df.reduce_input_bytes += static_cast<uint64_t>(c_bytes);

    ReduceDistribution dist = EstimateReduceDistribution(b, std::max(1, R));
    df.nonempty_reduce_partitions =
        std::max(df.nonempty_reduce_partitions, dist.nonempty);
    df.max_reduce_input_bytes += static_cast<uint64_t>(
        c_bytes * dist.max_fraction);

    // Fold the reduce-side pipeline. The first grouped stage's selectivity
    // was profiled against the *pre-combine* map output (the profiler sees
    // no combiner), so its output is based on the pre-combine volume; its
    // CPU reflects the post-combine rows it actually processes.
    double r_recs = c_recs;
    double r_bytes = c_bytes;
    bool first_stage = true;
    for (const Stage& s : b.reduce_stages) {
      if (!s.stats) {
        return Status::FailedPrecondition("stage '" + s.name() +
                                          "' of job '" + job.id +
                                          "' has no profiled statistics");
      }
      df.reduce_cpu_units += r_recs * s.stats->cpu_per_record;
      if (first_stage && s.kind == Stage::Kind::kReduce) {
        r_recs = recs * s.stats->record_selectivity;
        r_bytes = bytes * s.stats->byte_selectivity;
        first_stage = false;
        if (!s.tee_dataset.empty()) {
          df.tee_bytes += static_cast<uint64_t>(r_bytes);
          PredictedDataset tee;
          tee.records = r_recs;
          tee.bytes = r_bytes;
          tee.stored_bytes = r_bytes;
          tee.partitions = std::max(1, R);
          tee.max_partition_fraction = dist.max_fraction;
          (*datasets)[s.tee_dataset] = tee;
        }
        continue;
      }
      first_stage = false;
      r_recs *= s.stats->record_selectivity;
      r_bytes *= s.stats->byte_selectivity;
      if (!s.tee_dataset.empty()) {
        df.tee_bytes += static_cast<uint64_t>(r_bytes);
        PredictedDataset tee;
        tee.records = r_recs;
        tee.bytes = r_bytes;
        tee.stored_bytes = r_bytes;
        tee.partitions = std::max(1, R);
        tee.max_partition_fraction = dist.max_fraction;
        (*datasets)[s.tee_dataset] = tee;
      }
    }
    df.output_records += static_cast<uint64_t>(r_recs);
    df.output_bytes += static_cast<uint64_t>(r_bytes);

    PredictedDataset out;
    out.records = r_recs;
    out.bytes = r_bytes;
    out.stored_bytes = job.config.compress_output
                           ? r_bytes * model_.cluster().compress_ratio
                           : r_bytes;
    out.partitions = std::max(1, R);
    out.max_partition_fraction = dist.max_fraction;
    (*datasets)[b.output_dataset] = out;
  }
  return df;
}

Result<WorkflowDataflow> WhatIfEngine::PredictDataflow(
    const Plan& plan) const {
  return PredictDataflowImpl(plan, nullptr);
}

Result<WorkflowDataflow> WhatIfEngine::PredictDataflowImpl(
    const Plan& plan,
    const std::map<std::string, CostDigest>* job_digests) const {
  // Seed predictions from base dataset annotations.
  std::map<std::string, PredictedDataset> predicted;
  for (const auto& [id, ds] : plan.datasets()) {
    if (!ds.is_base_input) continue;
    const DatasetAnnotation& a = ds.annotation;
    if (!a.num_records || !a.bytes) {
      return Status::FailedPrecondition(
          "base dataset '" + id + "' has no size annotation");
    }
    PredictedDataset p;
    p.records = static_cast<double>(*a.num_records);
    p.bytes = static_cast<double>(*a.bytes);
    const Layout* layout = a.layout ? &*a.layout : &ds.layout;
    p.stored_bytes = layout->compressed
                         ? p.bytes * model_.cluster().compress_ratio
                         : p.bytes;
    if (a.num_partitions) {
      p.partitions = *a.num_partitions;
    } else {
      p.partitions = std::max(
          1, static_cast<int>(std::ceil(p.stored_bytes /
                                        (layout->block_mb * kMB))));
    }
    p.max_partition_fraction = 1.0 / std::max(1, p.partitions);
    predicted[id] = p;
  }

  STUBBY_ASSIGN_OR_RETURN(std::vector<std::string> order,
                          plan.TopologicalOrder());
  WorkflowDataflow flow;
  std::vector<ScheduledJob> scheduled;
  uint64_t replayed = 0;
  uint64_t predicted_fresh = 0;
  // Counts this pass as full (every job predicted from scratch) or
  // incremental (at least one job replayed from the memo) once any
  // job-level work happened.
  auto count_pass = [&] {
    if (stats_ == nullptr || (replayed == 0 && predicted_fresh == 0)) return;
    if (replayed == 0) {
      ++stats_->full_predictions;
    } else {
      ++stats_->incremental_predictions;
    }
  };
  for (const auto& jid : order) {
    auto job_or = plan.GetJob(jid);
    if (!job_or.ok()) {
      count_pass();
      return job_or.status();
    }
    const JobVertex* job = *job_or;

    // Per-job memo: key = job content digest + the predictions of its
    // inputs. A hit replays the stored dataflow, task times, and output
    // predictions — bit-identical to recomputing them.
    CostKey key{};
    bool have_key = false;
    if (cache_ != nullptr) {
      CostDigest digest;
      if (job_digests != nullptr) {
        auto dit = job_digests->find(jid);
        digest = dit != job_digests->end() ? dit->second
                                           : JobContentDigest(*job);
      } else {
        digest = JobContentDigest(*job);
      }
      bool inputs_known = true;
      for (const std::string& in : job->InputDatasets()) {
        auto it = predicted.find(in);
        if (it == predicted.end()) {
          // Missing input prediction: fall through to PredictJob, which
          // reports the precise error.
          inputs_known = false;
          break;
        }
        digest.Mix(in);
        MixPredictedDataset(&digest, it->second);
      }
      if (inputs_known) {
        key = digest.value();
        have_key = true;
        if (const CostCache::JobEntry* entry = cache_->FindJob(key)) {
          ++replayed;
          if (stats_ != nullptr) ++stats_->job_cache_hits;
          for (const auto& [id, p] : entry->outputs) predicted[id] = p;
          ScheduledJob sj;
          sj.id = jid;
          sj.deps = plan.UpstreamJobs(jid);
          sj.times = entry->times;
          scheduled.push_back(std::move(sj));
          flow.jobs.push_back(entry->dataflow);
          continue;
        }
      }
    }

    auto df_or = PredictJob(plan, *job, &predicted);
    if (!df_or.ok()) {
      count_pass();
      return df_or.status();
    }
    ++predicted_fresh;
    if (stats_ != nullptr) ++stats_->job_predictions;
    ScheduledJob sj;
    sj.id = jid;
    sj.deps = plan.UpstreamJobs(jid);
    sj.times = model_.TaskTimes(*df_or, job->config);
    if (have_key) {
      CostCache::JobEntry entry;
      entry.dataflow = *df_or;
      entry.times = sj.times;
      for (const std::string& out : job->OutputDatasets()) {
        auto it = predicted.find(out);
        if (it != predicted.end()) entry.outputs.emplace_back(out, it->second);
      }
      cache_->InsertJob(key, std::move(entry));
    }
    scheduled.push_back(std::move(sj));
    flow.jobs.push_back(std::move(*df_or));
  }
  count_pass();
  STUBBY_ASSIGN_OR_RETURN(ScheduleResult sched,
                          SimulateCluster(scheduled, model_.cluster()));
  flow.makespan_sec = sched.makespan_sec;
  flow.job_finish_sec = std::move(sched.job_finish_sec);
  return flow;
}

CostEstimate WhatIfEngine::Cost(const Plan& plan) const {
  return CostImpl(plan, nullptr);
}

CostEstimate WhatIfEngine::CostWithDigests(
    const Plan& plan,
    const std::map<std::string, CostDigest>& job_digests) const {
  return CostImpl(plan, &job_digests);
}

CostEstimate WhatIfEngine::CostImpl(
    const Plan& plan,
    const std::map<std::string, CostDigest>* job_digests) const {
  if (stats_ != nullptr) ++stats_->whatif_invocations;
  CostKey key{};
  std::map<std::string, CostDigest> local_digests;
  if (cache_ != nullptr) {
    if (job_digests == nullptr) {
      key = PlanCostDigest(plan, &local_digests);
      job_digests = &local_digests;
    } else {
      key = PlanCostDigestFrom(plan, *job_digests);
    }
    if (const CostEstimate* hit = cache_->FindPlan(key)) {
      if (stats_ != nullptr) ++stats_->plan_cache_hits;
      return *hit;
    }
    if (stats_ != nullptr) ++stats_->plan_cache_misses;
  }
  CostEstimate est;
  auto flow = PredictDataflowImpl(
      plan, cache_ != nullptr ? job_digests : nullptr);
  if (flow.ok()) {
    est.cost = flow->makespan_sec;
    est.fallback = false;
    est.dataflow = std::move(*flow);
  } else {
    // Fallback: the number-of-jobs cost model of YSmart [11].
    est.cost = static_cast<double>(plan.num_jobs());
    est.fallback = true;
  }
  if (cache_ != nullptr) cache_->InsertPlan(key, est);
  return est;
}

bool WhatIfEngine::IsCostable(const Plan& plan) const {
  return PredictDataflow(plan).ok();
}

}  // namespace stubby

// Analytical per-phase timing model of MapReduce job execution, in the
// style of the Starfish What-if Engine's white-box models [8]: read, map,
// collect/spill/sort, combine, compress, shuffle, merge, reduce, and write
// phases, each driven by dataflow numbers, the job configuration, and the
// cluster spec. The same model times observed dataflow (ground truth) and
// predicted dataflow (cost estimation).

#pragma once

#include "cost/dataflow.h"
#include "mr/cluster.h"
#include "mr/job_config.h"

namespace stubby {

/// Task-level durations of one job, ready for the cluster scheduler.
struct JobTaskTimes {
  int map_tasks = 0;
  int reduce_tasks = 0;  ///< 0 for map-only
  double map_avg_sec = 0.0;
  double map_max_sec = 0.0;     ///< slowest map task (skew)
  double reduce_avg_sec = 0.0;
  double reduce_max_sec = 0.0;  ///< slowest reduce task (skew)
  double job_overhead_sec = 0.0;  ///< submission/initialization

  std::string ToString() const;
};

/// Converts dataflow into per-task times under a configuration and cluster.
class PhaseTimeModel {
 public:
  explicit PhaseTimeModel(ClusterSpec cluster)
      : cluster_(std::move(cluster)) {}

  const ClusterSpec& cluster() const { return cluster_; }

  /// Per-task durations for one job.
  JobTaskTimes TaskTimes(const JobDataflow& df, const JobConfig& config) const;

  /// Standalone running time of one job on an otherwise idle cluster using
  /// the wave model: (waves-1)*avg + max per phase, plus overheads.
  double StandaloneJobTime(const JobDataflow& df,
                           const JobConfig& config) const;

  /// Number of map-side spills implied by the configuration: output volume
  /// per task versus the effective sort buffer (which shrinks when several
  /// packed pipelines share the task's memory).
  int SpillCount(double map_output_bytes_per_task, const JobConfig& config,
                 int pipelines_per_task) const;

  /// Merge rounds needed to bring `segments` down to one sorted run with a
  /// fan-in of `factor`.
  static int MergePasses(int segments, int factor);

 private:
  ClusterSpec cluster_;
};

}  // namespace stubby

#include "cost/schedule.h"

#include <algorithm>
#include <queue>
#include <set>

namespace stubby {

namespace {

// Tasks are scheduled in wave-sized batches (all tasks of a batch share the
// same duration) which keeps the event count proportional to waves x jobs
// rather than tasks, making the simulation cheap enough to sit inside the
// optimizer's inner costing loop. The slowest task's extra time (skew) is
// charged to the final batch of each phase.
struct JobState {
  const ScheduledJob* job = nullptr;
  int deps_remaining = 0;
  double ready_time = -1.0;  ///< maps may start (deps done + overhead)
  int maps_pending = 0;
  int maps_running = 0;
  double reduce_ready_time = -1.0;  ///< reduces may start (maps done)
  int reduces_pending = 0;
  int reduces_running = 0;
  double finish_time = -1.0;
  bool done = false;
};

struct Event {
  double time;
  int seq;  // tie-break for determinism
  enum Kind { kMapBatchDone, kReduceBatchDone } kind;
  size_t job_index;
  int count;  // tasks in the batch

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

}  // namespace

Result<ScheduleResult> SimulateCluster(const std::vector<ScheduledJob>& jobs,
                                       const ClusterSpec& cluster) {
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (!index.emplace(jobs[i].id, i).second) {
      return Status::InvalidArgument("duplicate job id '" + jobs[i].id + "'");
    }
  }
  std::vector<JobState> state(jobs.size());
  std::vector<std::vector<size_t>> dependents(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    state[i].job = &jobs[i];
    state[i].maps_pending = std::max(0, jobs[i].times.map_tasks);
    state[i].reduces_pending = std::max(0, jobs[i].times.reduce_tasks);
    state[i].deps_remaining = 0;
    for (const auto& d : jobs[i].deps) {
      auto it = index.find(d);
      if (it == index.end()) {
        return Status::InvalidArgument("job '" + jobs[i].id +
                                       "' depends on unknown job '" + d + "'");
      }
      dependents[it->second].push_back(i);
      state[i].deps_remaining++;
    }
  }

  int free_map = cluster.total_map_slots();
  int free_reduce = cluster.total_reduce_slots();

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> pq;
  int seq = 0;
  double now = 0.0;

  for (size_t i = 0; i < state.size(); ++i) {
    if (state[i].deps_remaining == 0) {
      state[i].ready_time = state[i].job->times.job_overhead_sec;
    }
  }

  auto finish_job = [&](size_t i, std::vector<size_t>* newly_ready) {
    state[i].done = true;
    state[i].finish_time = now;
    for (size_t dep : dependents[i]) {
      if (--state[dep].deps_remaining == 0) {
        state[dep].ready_time =
            now + state[dep].job->times.job_overhead_sec;
        newly_ready->push_back(dep);
      }
    }
  };

  // Schedules as many ready tasks as slots allow; FIFO by (ready_time, id).
  auto dispatch = [&]() {
    // Map tasks.
    while (free_map > 0) {
      size_t best = state.size();
      for (size_t i = 0; i < state.size(); ++i) {
        if (state[i].maps_pending > 0 && state[i].ready_time >= 0 &&
            state[i].ready_time <= now) {
          if (best == state.size() ||
              state[i].ready_time < state[best].ready_time ||
              (state[i].ready_time == state[best].ready_time &&
               state[i].job->id < state[best].job->id)) {
            best = i;
          }
        }
      }
      if (best == state.size()) break;
      JobState& js = state[best];
      int n = std::min(free_map, js.maps_pending);
      js.maps_pending -= n;
      js.maps_running += n;
      free_map -= n;
      double dur = js.maps_pending == 0 ? js.job->times.map_max_sec
                                        : js.job->times.map_avg_sec;
      pq.push(Event{now + std::max(0.0, dur), seq++, Event::kMapBatchDone,
                    best, n});
    }
    // Reduce tasks.
    while (free_reduce > 0) {
      size_t best = state.size();
      for (size_t i = 0; i < state.size(); ++i) {
        if (state[i].reduces_pending > 0 && state[i].reduce_ready_time >= 0 &&
            state[i].reduce_ready_time <= now) {
          if (best == state.size() ||
              state[i].reduce_ready_time < state[best].reduce_ready_time ||
              (state[i].reduce_ready_time == state[best].reduce_ready_time &&
               state[i].job->id < state[best].job->id)) {
            best = i;
          }
        }
      }
      if (best == state.size()) break;
      JobState& js = state[best];
      int n = std::min(free_reduce, js.reduces_pending);
      js.reduces_pending -= n;
      js.reduces_running += n;
      free_reduce -= n;
      double dur = js.reduces_pending == 0 ? js.job->times.reduce_max_sec
                                           : js.job->times.reduce_avg_sec;
      pq.push(Event{now + std::max(0.0, dur), seq++, Event::kReduceBatchDone,
                    best, n});
    }
  };

  // Jobs with zero tasks complete instantly at their ready time; model them
  // as a zero-length map batch.
  for (size_t i = 0; i < state.size(); ++i) {
    if (state[i].job->times.map_tasks <= 0) state[i].maps_pending = 1;
  }

  // Kick-off events at initial ready times so that jobs whose overhead
  // elapses while others are running get dispatched promptly.
  for (size_t i = 0; i < state.size(); ++i) {
    if (state[i].ready_time >= 0) {
      pq.push(Event{state[i].ready_time, seq++, Event::kMapBatchDone, i, 0});
    }
  }

  dispatch();
  // Advance to the earliest pending ready time whenever nothing runs.
  size_t guard = 0;
  const size_t kGuardLimit = 10'000'000;
  while (true) {
    if (pq.empty()) {
      // Nothing running: advance to the earliest future ready time.
      double next_ready = -1.0;
      for (const auto& js : state) {
        if (js.done) continue;
        double t = -1.0;
        if (js.maps_pending > 0 && js.ready_time >= 0) t = js.ready_time;
        if (js.reduces_pending > 0 && js.reduce_ready_time >= 0) {
          t = t < 0 ? js.reduce_ready_time : std::min(t, js.reduce_ready_time);
        }
        if (t >= 0 && (next_ready < 0 || t < next_ready)) next_ready = t;
      }
      if (next_ready < 0) break;  // all done
      now = next_ready;
      dispatch();
      if (pq.empty()) break;  // defensive: nothing schedulable
      continue;
    }
    if (++guard > kGuardLimit) {
      return Status::Internal("cluster simulation exceeded event limit");
    }
    Event ev = pq.top();
    pq.pop();
    now = ev.time;
    JobState& js = state[ev.job_index];
    std::vector<size_t> newly_ready;
    if (ev.kind == Event::kMapBatchDone) {
      js.maps_running -= ev.count;
      free_map += ev.count;
      if (js.maps_pending == 0 && js.maps_running == 0) {
        if (js.job->times.reduce_tasks > 0) {
          js.reduce_ready_time = now;
        } else if (!js.done) {
          finish_job(ev.job_index, &newly_ready);
        }
      }
    } else {
      js.reduces_running -= ev.count;
      free_reduce += ev.count;
      if (js.reduces_pending == 0 && js.reduces_running == 0 && !js.done) {
        finish_job(ev.job_index, &newly_ready);
      }
    }
    dispatch();
  }

  ScheduleResult result;
  for (const auto& js : state) {
    if (!js.done) {
      return Status::Internal("job '" + js.job->id +
                              "' never completed in simulation (cyclic "
                              "dependencies?)");
    }
    result.job_finish_sec[js.job->id] = js.finish_time;
    result.makespan_sec = std::max(result.makespan_sec, js.finish_time);
  }
  return result;
}

}  // namespace stubby

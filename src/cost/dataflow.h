// Job/workflow dataflow descriptions. The execution engine fills these with
// *observed* numbers (ground truth, playing the role of the paper's EC2
// cluster); the what-if engine fills them with *predicted* numbers from
// profile annotations (Section 5). Both feed the same phase-time model and
// cluster scheduler, so "actual" and "estimated" costs differ only through
// the dataflow numbers — exactly the paper's setup.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stubby {

/// Upper bound on map tasks per input scan in the simulation (protects the
/// in-memory executor from degenerate split settings). The what-if engine
/// applies the same cap so predictions match observations.
inline constexpr int kMaxSimulatedMapTasks = 8192;

/// Per-job dataflow in logical units (sample counts scaled by dataset
/// logical_scale).
struct JobDataflow {
  std::string job_id;

  int num_map_tasks = 0;
  int num_reduce_tasks = 0;  ///< 0 for map-only jobs

  // Map side.
  uint64_t map_input_records = 0;
  uint64_t map_input_bytes = 0;         ///< raw (uncompressed) bytes read
  uint64_t map_input_stored_bytes = 0;  ///< on-disk bytes (after compression)
  double map_cpu_units = 0.0;           ///< sum over stages of records*weight
  uint64_t map_output_records = 0;      ///< into the shuffle, before combine
  uint64_t map_output_bytes = 0;

  // Combine output (equals map output when no combiner ran).
  uint64_t combine_output_records = 0;
  uint64_t combine_output_bytes = 0;
  double combine_cpu_units = 0.0;

  // Reduce side.
  uint64_t reduce_input_records = 0;
  uint64_t reduce_input_bytes = 0;
  double reduce_cpu_units = 0.0;

  // Final output (raw; output compression applied by the phase model).
  uint64_t output_records = 0;
  uint64_t output_bytes = 0;
  bool output_compressed = false;

  // Side outputs (tee materializations), raw bytes.
  uint64_t tee_bytes = 0;

  // Bloom predicate transfer (all zero when the branch has no
  // BloomTransferSpec): the pre-map filter-build pass over the build
  // input's map output, and the size of the built filter that every map
  // task fetches before probing.
  uint64_t bloom_build_records = 0;  ///< build-side rows hashed
  uint64_t bloom_build_bytes = 0;    ///< build-side bytes scanned
  double bloom_build_cpu_units = 0.0;
  uint64_t bloom_filter_bytes = 0;

  // Skew / critical-path information.
  uint64_t max_map_task_input_bytes = 0;
  uint64_t max_reduce_input_bytes = 0;  ///< largest reduce partition
  int nonempty_reduce_partitions = 0;   ///< parallelism actually achieved

  /// Number of parallel pipelines sharing each task's memory (1 for an
  /// unpacked job; >1 after horizontal packing). Drives the
  /// resource-contention penalty in the phase model.
  int pipelines_per_task = 1;

  std::string ToString() const;
};

/// Whole-workflow dataflow plus the simulated makespan.
struct WorkflowDataflow {
  std::vector<JobDataflow> jobs;
  double makespan_sec = 0.0;
  std::map<std::string, double> job_finish_sec;

  const JobDataflow* FindJob(const std::string& id) const;
  std::string ToString() const;
};

}  // namespace stubby

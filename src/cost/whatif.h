// What-if engine (Section 5): estimates the execution cost of an annotated
// workflow plan from (1) per-stage dataflow and cost statistics carried by
// profile annotations, (2) the per-job configurations, (3) the size and
// layout of the input datasets, and (4) the cluster spec — the same four
// inputs as Starfish's What-if Engine, which the paper uses.
//
// When the required annotations are missing, costing falls back to the
// simple job-count model used by YSmart [11], exactly as Section 5
// prescribes.

#pragma once

#include <map>
#include <string>

#include "common/result.h"
#include "cost/dataflow.h"
#include "cost/phase_model.h"
#include "mr/cluster.h"
#include "workflow/plan.h"

namespace stubby {

class CostDigest;
class CostStore;
struct CostInstrumentation;

/// Predicted size of a (possibly intermediate) dataset.
struct PredictedDataset {
  double records = 0.0;
  double bytes = 0.0;         ///< raw bytes
  double stored_bytes = 0.0;  ///< after compression
  int partitions = 1;
  /// Fraction of the data in the largest partition (skew carrier).
  double max_partition_fraction = 1.0;
};

/// Result of costing a plan.
struct CostEstimate {
  /// Estimated cost. Comparable across plans costed by the same engine:
  /// makespan seconds normally, or the number of jobs in fallback mode.
  double cost = 0.0;
  bool fallback = false;
  /// Per-job predicted dataflow (empty in fallback mode).
  WorkflowDataflow dataflow;
};

/// Cost estimator for plans.
class WhatIfEngine {
 public:
  explicit WhatIfEngine(ClusterSpec cluster)
      : model_(std::move(cluster)) {}

  /// Predicts the full dataflow and simulated makespan of `plan`. Fails
  /// with FailedPrecondition if required annotations (input sizes, stage
  /// statistics) are missing.
  Result<WorkflowDataflow> PredictDataflow(const Plan& plan) const;

  /// Costs the plan; never fails — uses the job-count fallback when the
  /// detailed prediction is not possible.
  CostEstimate Cost(const Plan& plan) const;

  /// Cost with caller-provided per-job content digests. The caller
  /// guarantees each entry equals JobContentDigest(job) for that job in
  /// `plan` — how the RRS loop avoids re-digesting jobs it did not touch.
  /// Behaves exactly like Cost(plan) (and ignores the digests) when no
  /// cache is attached.
  CostEstimate CostWithDigests(
      const Plan& plan,
      const std::map<std::string, CostDigest>& job_digests) const;

  /// True if all annotations needed for detailed costing are present.
  bool IsCostable(const Plan& plan) const;

  const PhaseTimeModel& model() const { return model_; }

  /// Attaches a memoization store (nullptr detaches) — the shared
  /// CostCache, or a task-private CostCacheOverlay during parallel costing
  /// batches. Caching is transparent: cached and uncached costing return
  /// bit-identical estimates. The store must outlive the engine or be
  /// detached first.
  void set_cache(CostStore* cache) { cache_ = cache; }
  CostStore* cache() const { return cache_; }

  /// Attaches a counter block updated by every Cost/PredictDataflow call
  /// (nullptr detaches). Callers that drive the engine — e.g. the unit
  /// optimizer's RRS loop — may also bump counters through this pointer.
  void set_instrumentation(CostInstrumentation* stats) { stats_ = stats; }
  CostInstrumentation* instrumentation() const { return stats_; }

 private:
  /// Predicts one job's dataflow given predictions for its inputs, and
  /// records predictions for its outputs.
  Result<JobDataflow> PredictJob(
      const Plan& plan, const JobVertex& job,
      std::map<std::string, PredictedDataset>* datasets) const;

  /// PredictDataflow with optional precomputed per-job content digests
  /// (avoids digesting every job twice when Cost already computed them for
  /// the whole-plan memo key).
  Result<WorkflowDataflow> PredictDataflowImpl(
      const Plan& plan,
      const std::map<std::string, CostDigest>* job_digests) const;

  CostEstimate CostImpl(
      const Plan& plan,
      const std::map<std::string, CostDigest>* job_digests) const;

  PhaseTimeModel model_;
  CostStore* cache_ = nullptr;
  CostInstrumentation* stats_ = nullptr;
};

}  // namespace stubby

#include "service/stubbyd.h"

#include <utility>

#include "common/strings.h"
#include "common/threading.h"

namespace stubby {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Parses the ordinal of a store snapshot id ("rs/<n>").
bool SnapshotOrdinal(const std::string& id, uint64_t* out) {
  if (id.size() < 4 || id.compare(0, 3, "rs/") != 0) return false;
  uint64_t n = 0;
  for (size_t i = 3; i < id.size(); ++i) {
    const char c = id[i];
    if (c < '0' || c > '9') return false;
    n = n * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = n;
  return true;
}

}  // namespace

const char* DegradeLevelName(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::kFull:
      return "full";
    case DegradeLevel::kRegisterSkip:
      return "register_skip";
    case DegradeLevel::kBlind:
      return "blind";
  }
  return "unknown";
}

std::string ServiceStats::ToString() const {
  return StrFormat(
      "accepted=%llu rejected=%llu completed=%llu failed=%llu waves=%llu "
      "conflicts=%llu degraded_skip=%llu degraded_blind=%llu "
      "hit_requests=%llu tenant_evictions=%llu | %s",
      (unsigned long long)accepted, (unsigned long long)rejected,
      (unsigned long long)completed, (unsigned long long)failed,
      (unsigned long long)waves, (unsigned long long)conflicts,
      (unsigned long long)degraded_register_skip,
      (unsigned long long)degraded_blind,
      (unsigned long long)requests_with_hits,
      (unsigned long long)tenant_evictions, reuse.ToString().c_str());
}

StubbyService::StubbyService(ServiceOptions options, ThreadPool* pool)
    : options_(std::move(options)),
      pool_(pool),
      store_(options_.store),
      cost_cache_(options_.cost_cache) {
  if (options_.wave_size == 0) options_.wave_size = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
}

Result<uint64_t> StubbyService::Submit(Submission submission) {
  if (submission.plan == nullptr || submission.dfs == nullptr) {
    return Status::InvalidArgument("submission needs a plan and a dfs");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.size() >= options_.queue_capacity) {
    ++stats_.rejected;
    return Status::FailedPrecondition(
        "admission queue full (capacity " +
        std::to_string(options_.queue_capacity) + ")");
  }
  Pending pending;
  pending.id = next_id_++;
  pending.submission = std::move(submission);
  pending.enqueued = std::chrono::steady_clock::now();
  const uint64_t id = pending.id;
  queue_.push_back(std::move(pending));
  ++stats_.accepted;
  return id;
}

size_t StubbyService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

uint64_t StubbyService::TenantBytes(const std::string& tenant) const {
  auto it = owned_.find(tenant);
  if (it == owned_.end()) return 0;
  return store_.SnapshotBytes(it->second);
}

uint64_t StubbyService::TenantBudget(const std::string& tenant) const {
  auto it = options_.tenant_budgets.find(tenant);
  if (it != options_.tenant_budgets.end()) return it->second;
  return options_.tenant_byte_budget;
}

DegradeLevel StubbyService::LevelFor(uint64_t stored_bytes) const {
  if (options_.hard_degrade_bytes > 0 &&
      stored_bytes >= options_.hard_degrade_bytes) {
    return DegradeLevel::kBlind;
  }
  if (options_.soft_degrade_bytes > 0 &&
      stored_bytes >= options_.soft_degrade_bytes) {
    return DegradeLevel::kRegisterSkip;
  }
  return DegradeLevel::kFull;
}

void StubbyService::Speculate(const Pending& pending, Speculation* spec) {
  const auto t0 = std::chrono::steady_clock::now();
  // The degrade decision is made against the wave-frozen store and
  // re-validated at commit time, where the authoritative bytes may have
  // moved — a divergence forces the sequential rerun path.
  spec->level = LevelFor(store_.stored_bytes());
  spec->overlay = std::make_unique<CostCacheOverlay>(&cost_cache_);
  StubbyOptions options = pending.submission.options;
  // The service owns the reuse and costing wiring; whatever the submitter
  // put in these borrowed-pointer fields must not leak into the run.
  options.reuse_store = nullptr;
  options.reuse_dfs = nullptr;
  options.pool = nullptr;
  options.cost_cache = spec->overlay.get();
  if (options_.reoptimize) options.reoptimize = true;
  const Plan& plan = *pending.submission.plan;
  const Dfs& dfs = *pending.submission.dfs;
  Result<ReuseSessionResult> run = Status::Unknown("not run");
  if (spec->level == DegradeLevel::kBlind) {
    ReuseSession session(nullptr);
    run = session.Run(plan, dfs, options, pool_);
  } else {
    // Private copy of the frozen store, with the journal attached.
    ResultStore local = store_;
    spec->base_nonempty = local.num_entries() > 0;
    spec->fork_base = local.next_snapshot_id();
    local.set_journal(&spec->journal);
    ReuseSession session(&local);
    run = session.Run(
        plan, dfs, options, pool_,
        /*register_outputs=*/spec->level == DegradeLevel::kFull);
    local.set_journal(nullptr);
  }
  if (run.ok()) {
    spec->result = std::move(*run);
  } else {
    spec->status = run.status();
  }
  spec->wall_sec = SecondsSince(t0);
}

bool StubbyService::ReplayJournal(const Speculation& spec,
                                  std::set<std::string>* created) {
  ResultStore scratch = store_;
  const uint64_t replay_base = scratch.next_snapshot_id();
  std::set<std::string> fresh_ids;
  // Ids minted after the fork point name different content in the
  // speculative copy than in the authoritative store; they map
  // positionally onto the ids the replay mints (the k-th post-fork
  // snapshot of the speculation is the k-th post-fork snapshot of the
  // replay — every Register is preceded by validated Peeks on its keys, so
  // the replay creates snapshots in the same relative order). Pre-fork ids
  // are content-stable (never mutated, never reused) and match literally.
  auto translate = [&](const std::string& id) -> std::string {
    uint64_t n = 0;
    if (SnapshotOrdinal(id, &n) && n >= spec.fork_base) {
      return "rs/" + std::to_string(replay_base + (n - spec.fork_base));
    }
    return id;
  };
  for (const StoreOp& op : spec.journal.ops()) {
    switch (op.kind) {
      case StoreOp::Kind::kPeek:
      case StoreOp::Kind::kLookup: {
        const StoredResult* got = op.kind == StoreOp::Kind::kPeek
                                      ? scratch.Peek(op.key)
                                      : scratch.Lookup(op.key);
        if ((got != nullptr) != op.hit) return false;
        if (got != nullptr &&
            got->snapshot_id != translate(op.snapshot_id)) {
          return false;
        }
        break;
      }
      case StoreOp::Kind::kPin:
        scratch.Pin(translate(op.snapshot_id));
        break;
      case StoreOp::Kind::kUnpin:
        scratch.Unpin(translate(op.snapshot_id));
        break;
      case StoreOp::Kind::kRegister: {
        const uint64_t before = scratch.next_snapshot_id();
        const std::string id = scratch.Register(*op.dataset, op.reg_keys);
        const bool fresh = scratch.next_snapshot_id() > before;
        // Freshness is already implied by the validated probes issued
        // right before each Register; check anyway so any unexpected
        // divergence forces the sequential rerun instead of committing a
        // result the sequential loop would not have produced.
        if (fresh != op.fresh) return false;
        if (fresh) fresh_ids.insert(id);
        break;
      }
    }
  }
  store_ = std::move(scratch);
  created->insert(fresh_ids.begin(), fresh_ids.end());
  return true;
}

RequestResult StubbyService::Commit(const Pending& pending,
                                    Speculation* spec) {
  const auto t0 = std::chrono::steady_clock::now();
  RequestResult out;
  out.id = pending.id;
  out.tenant = pending.submission.tenant;
  out.name = pending.submission.name;

  const DegradeLevel level_now = LevelFor(store_.stored_bytes());
  std::set<std::string> created;
  bool valid = spec->level == level_now;
  if (valid && spec->level != DegradeLevel::kBlind) {
    // The store-nonempty predicate gates reuse bookkeeping inside the
    // optimizer (cold-store short circuits), so it must still hold.
    valid = spec->base_nonempty == (store_.num_entries() > 0);
    if (valid) valid = ReplayJournal(*spec, &created);
  }

  if (valid) {
    out.status = spec->status;
    out.session = std::move(spec->result);
    out.degrade = spec->level;
    if (spec->overlay != nullptr) spec->overlay->MergeInto(&cost_cache_);
  } else {
    // An earlier commit of this drain changed what the speculation
    // observed: discard it (journal, overlay and all) and run the request
    // for real against the authoritative store — the exact sequential
    // semantics, with the pool available for intra-request parallelism.
    ++stats_.conflicts;
    out.reran = true;
    out.degrade = level_now;
    CostCacheOverlay overlay(&cost_cache_);
    StubbyOptions options = pending.submission.options;
    options.reuse_store = nullptr;
    options.reuse_dfs = nullptr;
    options.pool = nullptr;
    options.cost_cache = &overlay;
    if (options_.reoptimize) options.reoptimize = true;
    const Plan& plan = *pending.submission.plan;
    const Dfs& dfs = *pending.submission.dfs;
    const uint64_t before = store_.next_snapshot_id();
    Result<ReuseSessionResult> run = Status::Unknown("not run");
    if (level_now == DegradeLevel::kBlind) {
      ReuseSession session(nullptr);
      run = session.Run(plan, dfs, options, pool_);
    } else {
      ReuseSession session(&store_);
      run = session.Run(
          plan, dfs, options, pool_,
          /*register_outputs=*/level_now == DegradeLevel::kFull);
    }
    if (run.ok()) {
      out.session = std::move(*run);
    } else {
      out.status = run.status();
    }
    for (uint64_t n = before; n < store_.next_snapshot_id(); ++n) {
      created.insert("rs/" + std::to_string(n));
    }
    overlay.MergeInto(&cost_cache_);
  }

  Account(out.tenant, out.status, out.session, out.degrade, created);
  out.service_sec = spec->wall_sec + SecondsSince(t0);
  out.e2e_sec = SecondsSince(pending.enqueued);
  return out;
}

void StubbyService::Account(const std::string& tenant, const Status& status,
                            const ReuseSessionResult& result,
                            DegradeLevel level,
                            const std::set<std::string>& created) {
  if (status.ok()) {
    ++stats_.completed;
    stats_.reuse.Add(result.reuse);
    if (result.reuse.workflow_hits + result.reuse.whole_job_hits +
            result.reuse.prefix_hits >
        0) {
      ++stats_.requests_with_hits;
    }
  } else {
    ++stats_.failed;
  }
  if (level == DegradeLevel::kRegisterSkip) ++stats_.degraded_register_skip;
  if (level == DegradeLevel::kBlind) ++stats_.degraded_blind;

  if (!created.empty()) {
    owned_[tenant].insert(created.begin(), created.end());
  }
  const uint64_t budget = TenantBudget(tenant);
  auto it = owned_.find(tenant);
  if (budget > 0 && it != owned_.end()) {
    stats_.tenant_evictions += store_.EnforceBudgetOn(it->second, budget);
  }
  // Drop attribution for snapshots that no longer exist (evicted by the
  // global budget, a tenant budget, or registration churn).
  for (auto& [name, ids] : owned_) {
    for (auto iter = ids.begin(); iter != ids.end();) {
      if (!store_.HasSnapshot(*iter)) {
        iter = ids.erase(iter);
      } else {
        ++iter;
      }
    }
  }
}

std::vector<RequestResult> StubbyService::Drain() {
  std::vector<RequestResult> out;
  while (true) {
    std::vector<Pending> wave;
    {
      std::lock_guard<std::mutex> lock(mu_);
      while (!queue_.empty() && wave.size() < options_.wave_size) {
        wave.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (wave.empty()) break;
    ++stats_.waves;
    // Phase A: speculate the whole wave in parallel against the frozen
    // store and cost cache. Phase B: commit serially in submission order.
    std::vector<Speculation> specs(wave.size());
    RunTasks(pool_, wave.size(),
             [&](size_t i) { Speculate(wave[i], &specs[i]); });
    for (size_t i = 0; i < wave.size(); ++i) {
      out.push_back(Commit(wave[i], &specs[i]));
    }
  }
  return out;
}

}  // namespace stubby

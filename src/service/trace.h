// Deterministic synthetic submission traces for the stubbyd drivers
// (bench/bench_stubbyd.cc, tests/service_test.cc): a universe of small,
// structurally distinct workflows over integer data, and a Zipf-skewed
// arrival sequence over that universe with submissions round-tripped
// through a fixed set of logical tenants. Everything is a pure function of
// TraceOptions, so replaying a trace through the daemon and through a
// sequential fresh-session loop is a meaningful bit-identity comparison.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "service/stubbyd.h"
#include "workflow/plan.h"

namespace stubby {

struct TraceOptions {
  int universe = 32;     ///< distinct workflows
  int rows = 500;        ///< base rows per workflow (plus per-index jitter)
  int submissions = 1000;
  int tenants = 6;
  double zipf = 1.1;     ///< popularity skew over the universe (rank 1 hottest)
  uint64_t seed = 7;
  /// Profile odd-indexed universe entries, so the trace mixes detailed
  /// costing with the unprofiled job-count fallback path.
  bool profile_odd = true;
};

/// One universe entry: an annotated plan plus its base data.
struct TraceWorkflow {
  std::string name;
  std::shared_ptr<const Plan> plan;
  std::shared_ptr<const Dfs> dfs;
};

struct SubmissionTrace {
  std::vector<TraceWorkflow> universe;
  /// Submission order; plan/dfs pointers shared with `universe`.
  std::vector<Submission> submissions;
};

/// Builds universe entry `index` under `options` (pure function of both).
Result<TraceWorkflow> MakeTraceWorkflow(int index,
                                        const TraceOptions& options);

/// Builds the whole trace: universe plus the Zipf-skewed, tenant-tagged
/// submission sequence.
Result<SubmissionTrace> MakeSubmissionTrace(const TraceOptions& options);

}  // namespace stubby

// stubbyd: a long-lived, multi-tenant optimizer service. Many logical
// tenants submit annotated workflow plans into one bounded queue; the
// service runs the full optimize -> reuse-rewrite -> execute -> register
// loop for each against ONE shared in-memory ResultStore and ONE shared
// CostCache, so every tenant's executions warm the catalog for everyone
// else (ReStore's repository model, PVLDB 2012, lifted from a per-process
// file to a daemon).
//
// Isolation protocol (wave-based optimistic concurrency). Drain() takes
// requests off the queue in waves of `wave_size` (an explicit option,
// deliberately independent of the thread count):
//
//   Phase A — speculate (parallel). Each request of the wave runs against a
//   private copy of the authoritative store, frozen for the wave, with a
//   StoreJournal attached that records every Peek/Lookup/Register/Pin/
//   Unpin in order. Costing reads go through a per-request CostCacheOverlay
//   over the shared (frozen) CostCache.
//
//   Phase B — commit (serial, submission order). For each request in turn,
//   the journal is replayed against a scratch copy of the authoritative
//   store, validating every recorded probe answer (hit-ness and snapshot
//   id, with ids minted after the fork point translated positionally).
//   All probes validate: the scratch becomes authoritative and the
//   speculative result is committed as-is — it is exactly what a
//   sequential run would have produced. Any probe diverges (an earlier
//   commit changed what this request observed): the speculation is
//   discarded and the request re-runs serially against the authoritative
//   store. Either way the committed result equals the sequential one, so a
//   replayed submission trace is bit-identical at ANY thread count and any
//   wave size; the conflict/rerun counters depend only on the wave size.
//
// Admission control: Submit into a full queue fails deterministically with
// FailedPrecondition. Per-tenant byte budgets: snapshots are attributed to
// the submitting tenant and evicted (policy-ranked, within the tenant's
// set) when the tenant exceeds its budget. Graceful degradation: when the
// shared store grows past `soft_degrade_bytes`, requests still probe and
// serve hits but stop registering outputs; past `hard_degrade_bytes` they
// run reuse-blind.

#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "cost/cost_cache.h"
#include "optimizer/stubby.h"
#include "reuse/result_store.h"
#include "reuse/session.h"

namespace stubby {

class ThreadPool;

/// How much of the reuse loop a request ran with (the degradation ladder).
enum class DegradeLevel {
  kFull = 0,          ///< probe, serve hits, register outputs
  kRegisterSkip = 1,  ///< probe and serve hits, register nothing
  kBlind = 2,         ///< no store interaction at all
};

const char* DegradeLevelName(DegradeLevel level);

struct ServiceOptions {
  /// Admission bound: Submit fails once this many requests are queued.
  size_t queue_capacity = 256;
  /// Requests speculated concurrently per wave. A pure determinism knob:
  /// results never depend on it, conflict/rerun counters do — which is why
  /// it is an option and not the thread count.
  size_t wave_size = 8;
  /// Shared-store construction options (global byte budget + policy).
  ResultStore::Options store;
  /// Shared costing-memo capacities.
  CostCache::Options cost_cache;
  /// Per-tenant snapshot byte budget (0 = unlimited), overridable per
  /// tenant by name. Enforced after each request commits, against the
  /// snapshots that tenant's requests created.
  uint64_t tenant_byte_budget = 0;
  std::map<std::string, uint64_t> tenant_budgets;
  /// Degradation thresholds on the shared store's stored_bytes()
  /// (0 = level disabled). At or past `soft`, requests skip registration;
  /// at or past `hard`, they run reuse-blind.
  uint64_t soft_degrade_bytes = 0;
  uint64_t hard_degrade_bytes = 0;
  /// Force adaptive suffix re-optimization on for every submission
  /// (StubbyOptions::reoptimize). Submissions that set the flag themselves
  /// are honored either way. Bit-transparent on outputs, so the daemon's
  /// replay-equals-sequential contract is unchanged.
  bool reoptimize = false;
};

/// One queued workflow submission. Plan and DFS are shared so a popular
/// workflow can sit in the queue many times without copies.
struct Submission {
  std::string tenant = "default";
  std::string name;  ///< caller-chosen label, echoed in the result
  std::shared_ptr<const Plan> plan;
  std::shared_ptr<const Dfs> dfs;
  StubbyOptions options;  ///< reuse_store/reuse_dfs/cost_cache overwritten
};

/// What one submission produced.
struct RequestResult {
  uint64_t id = 0;  ///< submission id (assigned by Submit, 1-based)
  std::string tenant;
  std::string name;
  Status status;               ///< non-OK: the session run failed
  ReuseSessionResult session;  ///< valid when status is OK
  DegradeLevel degrade = DegradeLevel::kFull;
  bool reran = false;      ///< speculation conflicted; re-run serially
  double service_sec = 0;  ///< speculation + commit wall time
  double e2e_sec = 0;      ///< submit-to-commit wall time (queueing incl.)
};

/// Deterministic service counters (no wall times — everything here is
/// bit-identical across thread counts for the same submission trace).
struct ServiceStats {
  uint64_t accepted = 0;
  uint64_t rejected = 0;  ///< admission-control rejections
  uint64_t completed = 0;
  uint64_t failed = 0;  ///< session runs that returned an error
  uint64_t waves = 0;
  uint64_t conflicts = 0;  ///< speculations discarded and re-run
  uint64_t degraded_register_skip = 0;
  uint64_t degraded_blind = 0;
  uint64_t requests_with_hits = 0;  ///< any workflow/job/prefix hit
  uint64_t tenant_evictions = 0;    ///< evictions by per-tenant budgets
  ReuseStats reuse;                 ///< summed over completed requests

  std::string ToString() const;
};

/// The daemon. Thread-compatible surface: Submit may be called from any
/// thread; Drain (and the accessors) belong to the single service thread.
class StubbyService {
 public:
  explicit StubbyService(ServiceOptions options, ThreadPool* pool = nullptr);

  /// Enqueues a submission; returns its id, or FailedPrecondition when the
  /// queue is at capacity (deterministic admission control).
  Result<uint64_t> Submit(Submission submission);

  /// Processes the queue to empty, wave by wave, and returns the results
  /// in submission order.
  std::vector<RequestResult> Drain();

  const ServiceStats& stats() const { return stats_; }
  const ResultStore& store() const { return store_; }
  ResultStore& store() { return store_; }
  const CostCache& cost_cache() const { return cost_cache_; }
  size_t queue_depth() const;

  /// Stored bytes currently attributed to `tenant` (0 if unknown).
  uint64_t TenantBytes(const std::string& tenant) const;
  uint64_t TenantBudget(const std::string& tenant) const;
  DegradeLevel CurrentDegradeLevel() const {
    return LevelFor(store_.stored_bytes());
  }

 private:
  struct Pending {
    uint64_t id = 0;
    Submission submission;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Phase-A outcome of one request, consumed by Commit.
  struct Speculation {
    DegradeLevel level = DegradeLevel::kFull;
    bool base_nonempty = false;  ///< num_entries() > 0 at the fork point
    uint64_t fork_base = 0;      ///< next_snapshot_id() at the fork point
    StoreJournal journal;
    Status status = Status::OK();
    ReuseSessionResult result;
    std::unique_ptr<CostCacheOverlay> overlay;
    double wall_sec = 0;
  };

  DegradeLevel LevelFor(uint64_t stored_bytes) const;
  void Speculate(const Pending& pending, Speculation* spec);
  RequestResult Commit(const Pending& pending, Speculation* spec);
  /// Replays `spec`'s journal against a scratch copy of the store,
  /// validating probes. On success installs the scratch as authoritative,
  /// records created snapshot ids into `created`, and returns true.
  bool ReplayJournal(const Speculation& spec,
                     std::set<std::string>* created);
  void Account(const std::string& tenant, const Status& status,
               const ReuseSessionResult& result, DegradeLevel level,
               const std::set<std::string>& created);

  ServiceOptions options_;
  ThreadPool* pool_;
  ResultStore store_;
  CostCache cost_cache_;
  ServiceStats stats_;
  /// Snapshot ids each tenant's requests created (pruned to live ids).
  std::map<std::string, std::set<std::string>> owned_;

  mutable std::mutex mu_;  ///< guards queue_ and next_id_
  std::deque<Pending> queue_;
  uint64_t next_id_ = 1;
};

}  // namespace stubby

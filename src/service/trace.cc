#include "service/trace.h"

#include <utility>

#include "common/rng.h"
#include "profiler/profiler.h"
#include "workloads/builder.h"
#include "workloads/udfs.h"

namespace stubby {

namespace {

constexpr uint64_t kGB = 1ull << 30;

SchemaAnnotation AggAnnotation(const Schema& in, const std::string& group,
                               const std::vector<AggSpec>& aggs) {
  SchemaAnnotation sa;
  sa.k1 = FieldSet{group};
  sa.k2 = FieldSet{group};
  sa.k3 = FieldSet{group};
  FieldSet rest;
  for (const std::string& field : in.fields()) {
    if (field != group) rest.insert(field);
  }
  sa.v1 = rest;
  sa.v2 = rest;
  FieldSet produced;
  for (const AggSpec& a : aggs) produced.insert(a.out_field);
  sa.v3 = produced;
  return sa;
}

/// Four structural variants cycled over the universe, each parameterized by
/// the index so no two entries share content signatures: a map-only filter,
/// a filter + grouped aggregate, a two-job chain, and a two-base
/// multi-input join aggregate.
Result<WorkflowFactory> BuildWorkflow(int index, const TraceOptions& opt) {
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Rng rng(opt.seed * 0x9e3779b97f4a7c15ull +
          static_cast<uint64_t>(index) * 2654435761ull + 1);

  const std::string tag = "w" + std::to_string(index);
  Schema base_schema({"K", "G", "V"});
  const int rows =
      opt.rows + static_cast<int>(rng.NextInt(0, opt.rows / 4 + 1));
  std::vector<Row> data;
  data.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    data.push_back(
        Row{rng.NextInt(0, 19), rng.NextInt(0, 9), rng.NextInt(0, 99)});
  }
  STUBBY_RETURN_NOT_OK(
      f.AddBase("BASE", base_schema, Layout{}, 4, std::move(data), 2 * kGB));

  static const AggOp kOps[] = {AggOp::kSum, AggOp::kMax, AggOp::kMin,
                               AggOp::kCount, AggOp::kAvg};
  const int variant = index % 4;
  switch (variant) {
    case 0: {  // map-only filter
      const double lo = static_cast<double>(rng.NextInt(0, 8));
      const double hi = lo + static_cast<double>(rng.NextInt(5, 12));
      WorkflowFactory::JobDef def;
      def.id = "J0";
      def.inputs = {In("BASE", {Stage::Map(FilterRangeMap(
                             "filter_" + tag, base_schema, "K", lo, hi))})};
      def.map_output_schema = base_schema;
      def.output = "OUT";
      STUBBY_RETURN_NOT_OK(f.AddDataset("OUT", base_schema, true));
      STUBBY_RETURN_NOT_OK(f.AddJob(std::move(def)));
      break;
    }
    case 1: {  // filter + grouped aggregate on K
      const double lo = static_cast<double>(rng.NextInt(0, 40));
      const double hi = lo + static_cast<double>(rng.NextInt(30, 70));
      std::vector<AggSpec> aggs = {{"V", kOps[rng.NextInt(0, 4)], "A0"}};
      WorkflowFactory::JobDef def;
      def.id = "J0";
      def.inputs = {In("BASE", {Stage::Map(FilterRangeMap(
                             "filter_" + tag, base_schema, "V", lo, hi))})};
      def.map_output_schema = base_schema;
      def.reduce_stages = {Stage::Reduce(
          AggReduce("agg_" + tag, base_schema, {"K"}, aggs), {"K"})};
      def.schema_ann = AggAnnotation(base_schema, "K", aggs);
      def.output = "OUT";
      STUBBY_RETURN_NOT_OK(
          f.AddDataset("OUT", AggOutputSchema({"K"}, aggs), true));
      STUBBY_RETURN_NOT_OK(f.AddJob(std::move(def)));
      break;
    }
    case 2: {  // two-job chain: append a constant, then aggregate on G
      const std::string cfield = "C" + std::to_string(index % 7);
      std::vector<std::string> mid_fields = base_schema.fields();
      mid_fields.push_back(cfield);
      Schema mid_schema(mid_fields);
      WorkflowFactory::JobDef head;
      head.id = "J0";
      head.inputs = {In("BASE", {Stage::Map(AppendConstMap(
                              "append_" + tag, base_schema, cfield,
                              Value(rng.NextInt(0, 5))))})};
      head.map_output_schema = mid_schema;
      head.output = "MID";
      std::vector<AggSpec> aggs = {{"V", kOps[rng.NextInt(0, 4)], "A0"},
                                   {cfield, AggOp::kMax, "A1"}};
      WorkflowFactory::JobDef tail;
      tail.id = "J1";
      tail.inputs = {In("MID", {})};
      tail.map_output_schema = mid_schema;
      tail.reduce_stages = {Stage::Reduce(
          AggReduce("agg_" + tag, mid_schema, {"G"}, aggs), {"G"})};
      tail.schema_ann = AggAnnotation(mid_schema, "G", aggs);
      tail.output = "OUT";
      STUBBY_RETURN_NOT_OK(f.AddDataset("MID", mid_schema, false));
      STUBBY_RETURN_NOT_OK(
          f.AddDataset("OUT", AggOutputSchema({"G"}, aggs), true));
      STUBBY_RETURN_NOT_OK(f.AddJob(std::move(head)));
      STUBBY_RETURN_NOT_OK(f.AddJob(std::move(tail)));
      break;
    }
    default: {  // two bases feeding one multi-input join aggregate
      const int rows2 = opt.rows / 2 +
                        static_cast<int>(rng.NextInt(0, opt.rows / 4 + 1));
      std::vector<Row> data2;
      data2.reserve(static_cast<size_t>(rows2));
      for (int i = 0; i < rows2; ++i) {
        data2.push_back(
            Row{rng.NextInt(0, 19), rng.NextInt(0, 9), rng.NextInt(0, 99)});
      }
      STUBBY_RETURN_NOT_OK(f.AddBase("BASE2", base_schema, Layout{}, 4,
                                     std::move(data2), kGB));
      const double lo = static_cast<double>(rng.NextInt(0, 20));
      const double hi = lo + static_cast<double>(rng.NextInt(30, 90));
      std::vector<AggSpec> aggs = {{"V", AggOp::kSum, "A0"},
                                   {"G", kOps[rng.NextInt(0, 4)], "A1"}};
      WorkflowFactory::JobDef def;
      def.id = "J0";
      def.inputs = {In("BASE", {Stage::Map(FilterRangeMap(
                             "filter_" + tag, base_schema, "V", lo, hi))}),
                    In("BASE2", {})};
      def.map_output_schema = base_schema;
      def.reduce_stages = {Stage::Reduce(
          AggReduce("agg_" + tag, base_schema, {"K"}, aggs), {"K"})};
      def.schema_ann = AggAnnotation(base_schema, "K", aggs);
      def.output = "OUT";
      STUBBY_RETURN_NOT_OK(
          f.AddDataset("OUT", AggOutputSchema({"K"}, aggs), true));
      STUBBY_RETURN_NOT_OK(f.AddJob(std::move(def)));
      break;
    }
  }
  STUBBY_RETURN_NOT_OK(f.plan().Validate());
  return f;
}

}  // namespace

Result<TraceWorkflow> MakeTraceWorkflow(int index,
                                        const TraceOptions& options) {
  STUBBY_ASSIGN_OR_RETURN(WorkflowFactory f, BuildWorkflow(index, options));
  Plan plan = f.plan();
  Dfs dfs = f.dfs();
  if (options.profile_odd && index % 2 == 1) {
    Profiler profiler(ClusterSpec{});
    Dfs profiling_dfs = dfs;
    STUBBY_RETURN_NOT_OK(profiler.ProfilePlan(&plan, &profiling_dfs));
  }
  TraceWorkflow w;
  w.name = "wf" + std::to_string(index) + "/v" + std::to_string(index % 4);
  w.plan = std::make_shared<const Plan>(std::move(plan));
  w.dfs = std::make_shared<const Dfs>(std::move(dfs));
  return w;
}

Result<SubmissionTrace> MakeSubmissionTrace(const TraceOptions& options) {
  if (options.universe < 1 || options.tenants < 1) {
    return Status::InvalidArgument("trace needs >= 1 workflow and tenant");
  }
  SubmissionTrace trace;
  trace.universe.reserve(static_cast<size_t>(options.universe));
  for (int i = 0; i < options.universe; ++i) {
    STUBBY_ASSIGN_OR_RETURN(TraceWorkflow w, MakeTraceWorkflow(i, options));
    trace.universe.push_back(std::move(w));
  }
  // Popularity: universe index == Zipf rank - 1, so entry 0 is hottest.
  Rng rng(options.seed * 6364136223846793005ull + 1442695040888963407ull);
  trace.submissions.reserve(static_cast<size_t>(options.submissions));
  for (int s = 0; s < options.submissions; ++s) {
    const uint64_t rank = rng.NextZipf(
        static_cast<uint64_t>(options.universe), options.zipf);
    const TraceWorkflow& w = trace.universe[rank - 1];
    Submission sub;
    sub.tenant =
        "t" + std::to_string(rng.NextUint64(
                  static_cast<uint64_t>(options.tenants)));
    sub.name = w.name;
    sub.plan = w.plan;
    sub.dfs = w.dfs;
    trace.submissions.push_back(std::move(sub));
  }
  return trace;
}

}  // namespace stubby

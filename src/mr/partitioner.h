// Partition function model (Section 2.1 / Section 3.4). The default is hash
// partitioning on K2 with a per-partition sort on K2; Stubby's partition
// function transformation can switch to range partitioning, change split
// points, and change the per-partition sort fields (as vertical packing
// postconditions require).

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "mr/row_batch.h"
#include "mr/schema.h"
#include "mr/tuple.h"

namespace stubby {

enum class PartitionType { kHash, kRange };

const char* PartitionTypeName(PartitionType t);

/// Declarative description of a job's partition function. Lives in the plan
/// so transformations can inspect and rewrite it.
struct PartitionSpec {
  PartitionType type = PartitionType::kHash;

  /// Fields of the map-output row that partitioning is computed on.
  std::vector<std::string> partition_fields;

  /// Fields the map output is sorted on within each partition (the grouping
  /// comparator groups on a prefix of this order).
  std::vector<std::string> sort_fields;

  /// For range partitioning: sorted boundary rows over `partition_fields`.
  /// n split points define n+1 partitions; a row belongs to the first
  /// partition whose upper boundary exceeds it.
  std::vector<Row> split_points;

  /// Alternative to explicit split points: a dataset id whose rows are the
  /// boundary rows, resolved at execution time. Used by workflows where a
  /// sampling job computes split points for a later sort job (e.g. the
  /// Social Network Analysis and Log Analysis workflows of Section 7.1).
  std::string split_points_from;

  /// Default spec for a job whose map-output key is `key_fields`: hash
  /// partition and sort on the key.
  static PartitionSpec DefaultFor(const std::vector<std::string>& key_fields);

  /// Range partitioning with explicit splits fixes the number of partitions
  /// at split_points+1.
  bool FixesNumPartitions() const {
    return type == PartitionType::kRange && !split_points.empty();
  }
  int NumRangePartitions() const {
    return static_cast<int>(split_points.size()) + 1;
  }

  bool operator==(const PartitionSpec& other) const;
  std::string ToString() const;
};

/// Executable partitioner bound to a concrete map-output schema.
class Partitioner {
 public:
  /// Resolves field names against `schema`; fails if any are missing. When
  /// `num_partitions` is positive, a range spec whose split points define
  /// more partitions than that is rejected with InvalidArgument — the
  /// extra key ranges could only be folded into the last partition, silently
  /// skewing data (callers that only resolve fields pass 0 to skip the
  /// check).
  static Result<Partitioner> Make(const PartitionSpec& spec,
                                  const Schema& schema,
                                  int num_partitions = 0);

  /// Partition index for `row` among `num_partitions` buckets.
  int PartitionOf(const Row& row, int num_partitions) const;

  /// Partition index for live row `row` of `batch`; identical to
  /// PartitionOf on the materialized row.
  int PartitionOf(const RowBatch& batch, size_t row,
                  int num_partitions) const;

  /// Indices of the sort fields within the schema.
  const std::vector<size_t>& sort_indices() const { return sort_indices_; }
  const std::vector<size_t>& partition_indices() const {
    return partition_indices_;
  }

 private:
  Partitioner() = default;

  PartitionSpec spec_;
  std::vector<size_t> partition_indices_;
  std::vector<size_t> sort_indices_;
};

}  // namespace stubby

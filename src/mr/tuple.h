// Row: one record (tuple of Values) flowing through the simulated MapReduce
// system, plus key-projection helpers used by sorting, grouping, and
// partitioning.

#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "mr/value.h"

namespace stubby {

/// A record. Field meaning is given externally by a Schema; rows themselves
/// are positional.
class Row {
 public:
  Row() = default;
  Row(std::initializer_list<Value> values) : values_(values) {}
  explicit Row(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Serialized size in bytes (per-row framing overhead included).
  uint64_t SerializedSize() const;

  /// Projection of the fields at `indices`, in that order.
  Row Project(const std::vector<size_t>& indices) const;

  bool operator==(const Row& other) const { return values_ == other.values_; }
  bool operator!=(const Row& other) const { return !(*this == other); }
  bool operator<(const Row& other) const;  // lexicographic

  /// Content hash over all fields.
  uint64_t Hash() const;

  /// "(v1, v2, ...)" rendering for debugging.
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

/// Compares two rows on the fields at `indices` (same positions in both),
/// lexicographically. Returns <0, 0, >0.
int CompareOnFields(const Row& a, const Row& b,
                    const std::vector<size_t>& indices);

/// True if rows agree on all fields at `indices`.
bool EqualOnFields(const Row& a, const Row& b,
                   const std::vector<size_t>& indices);

/// Combined hash over the fields at `indices`.
uint64_t HashOnFields(const Row& r, const std::vector<size_t>& indices);

/// Approximate row equality: numeric fields compare with relative tolerance
/// `rel_tol` (MapReduce double aggregation is summation-order dependent, so
/// equivalent plans produce results equal only up to rounding).
bool RowApproxEqual(const Row& a, const Row& b, double rel_tol = 1e-9);

/// Approximate multiset equality of row vectors: both are sorted, then each
/// row is greedily matched against the unmatched rows of the other side
/// within tolerance. (Plain pairwise comparison after sorting is wrong:
/// rows that are equal within tolerance can sort into different positions.)
bool RowsApproxEqual(std::vector<Row> a, std::vector<Row> b,
                     double rel_tol = 1e-9);

}  // namespace stubby

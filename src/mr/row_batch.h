// RowBatch: a columnar batch of records for the vectorized executor paths.
// Values live in shared, immutable column vectors; a selection vector of
// ascending physical row indices says which rows are live. Map-side batch
// kernels transform batches structurally (swapping column pointers,
// narrowing the selection, appending dense columns) instead of touching
// every Row, which removes the per-row Value-vector allocations and virtual
// emitter dispatch of the record-at-a-time path.
//
// The batch carries accounting helpers (SerializedSize / hash / compare)
// that reproduce the per-Row results of mr/tuple.* exactly, so the batched
// executor produces bit-identical byte/record dataflow accounting.
//
// Invariant: every column of a batch has the same physical length, and the
// physical index space never changes across a batch pipeline — stages only
// narrow the selection or add columns. That property is what lets
// BatchPipelineRunner replay per-row CPU accounting in the exact order of
// the record-at-a-time path (see exec/wrappers.h).

#pragma once

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "mr/tuple.h"
#include "mr/value.h"

namespace stubby {

/// Columnar batch with shared columns and a selection vector.
class RowBatch {
 public:
  using Column = std::vector<Value>;
  using ColumnPtr = std::shared_ptr<const Column>;

  RowBatch() = default;

  /// Builds a dense batch (identity selection) from `rows`. All rows must
  /// have `num_columns` fields; `rows` may be empty.
  static RowBatch FromRows(const std::vector<Row>& rows, size_t num_columns);

  /// Builds a batch directly over shared columns with an identity selection
  /// (zero-copy: the columns are not materialized again). `strides` is
  /// parallel to `cols` (1 = dense of length `physical_rows`, 0 = broadcast
  /// single-element column). This is the columnar-storage scan constructor:
  /// PartitionData hands its cached columns straight to the executor.
  static RowBatch FromColumns(std::vector<ColumnPtr> cols,
                              std::vector<uint32_t> strides,
                              size_t physical_rows);

  /// Live (selected) row count.
  size_t num_rows() const { return sel_.size(); }
  /// Underlying column length (live + filtered-out rows).
  size_t physical_rows() const { return physical_rows_; }
  size_t num_columns() const { return cols_.size(); }

  /// Ascending physical indices of the live rows.
  const std::vector<uint32_t>& selection() const { return sel_; }

  /// Value of column `c` at physical row `phys`. Handles broadcast
  /// (constant) columns, whose backing vector holds a single element;
  /// always use this instead of indexing a column directly.
  const Value& ValueAt(size_t c, uint32_t phys) const {
    return (*cols_[c])[phys * stride_[c]];
  }

  /// Value of live row `row` (selection position), column `c`.
  const Value& At(size_t row, size_t c) const {
    return ValueAt(c, sel_[row]);
  }

  // ---- Structural kernels (used by batch map functions) -------------------

  /// Reorders/subsets columns to `indices` (shared pointers; O(columns)).
  void ProjectColumns(const std::vector<size_t>& indices);

  /// Appends a column; its length must equal physical_rows().
  void AppendColumn(ColumnPtr col);

  /// Appends a broadcast column: every physical row reads the same value.
  /// Stored as a single element with access stride 0, so appending a
  /// constant is O(1) regardless of batch size.
  void AppendConstColumn(const Value& v);

  /// Narrows the selection to live rows satisfying `keep(physical_index)`.
  template <typename Pred>
  void FilterSelection(Pred keep) {
    std::vector<uint32_t> out;
    out.reserve(sel_.size());
    for (uint32_t phys : sel_) {
      if (keep(phys)) out.push_back(phys);
    }
    sel_ = std::move(out);
  }

  /// Replaces the selection. Inside a batch *map* pipeline, `sel` must be an
  /// ascending subset of the current selection (kernels may only drop rows,
  /// never reorder or resurrect them) — BatchPipelineRunner's CPU replay
  /// depends on it. Carrier batches outside map pipelines (shuffle buckets,
  /// sorted reduce inputs) may hold arbitrary permutations of physical ids.
  void SetSelection(std::vector<uint32_t> sel) { sel_ = std::move(sel); }

  /// Columns and strides, for consumers that store batches column-natively
  /// (see dfs/dataset.h PartitionData::FromBatch).
  const std::vector<ColumnPtr>& columns() const { return cols_; }
  const std::vector<uint32_t>& strides() const { return stride_; }

  // ---- Accounting parity helpers ------------------------------------------
  // Each reproduces the corresponding per-Row result of mr/tuple.* exactly
  // (`row` is a selection position).

  /// == MaterializeRow(row).SerializedSize().
  uint64_t RowSerializedSize(size_t row) const;

  /// Sum of RowSerializedSize over all live rows (integer sum, so the
  /// result is independent of batching).
  uint64_t TotalSerializedBytes() const;

  /// == MaterializeRow(row).Hash().
  uint64_t RowHash(size_t row) const;

  /// == HashOnFields(MaterializeRow(row), indices).
  uint64_t HashOnFields(size_t row, const std::vector<size_t>& indices) const;

  /// == CompareOnFields(MaterializeRow(a), MaterializeRow(b), indices).
  int Compare(size_t a, size_t b, const std::vector<size_t>& indices) const;

  // ---- Materialization ----------------------------------------------------

  /// Live row `row` as a Row (copies the values).
  Row MaterializeRow(size_t row) const;

  /// All live rows, in selection order.
  std::vector<Row> ToRows() const;

 private:
  std::vector<ColumnPtr> cols_;
  /// Per-column access stride: 1 for dense columns, 0 for broadcast
  /// (constant) columns backed by a single element. Parallel to cols_.
  std::vector<uint32_t> stride_;
  std::vector<uint32_t> sel_;
  size_t physical_rows_ = 0;
};

/// Builds a dense RowBatch row-append-at-a-time. Batch reduce/combine
/// kernels emit output rows through this instead of a row Emitter, so their
/// output lands column-native without a rows round-trip.
class ColumnAppender {
 public:
  explicit ColumnAppender(size_t num_columns) : cols_(num_columns) {}

  size_t num_columns() const { return cols_.size(); }
  size_t num_rows() const { return num_rows_; }

  /// Appends one output row; `values.size()` must equal num_columns().
  void Append(std::vector<Value> values) {
    for (size_t c = 0; c < cols_.size(); ++c) {
      cols_[c].push_back(std::move(values[c]));
    }
    ++num_rows_;
  }

  /// Appends a copy of `r`.
  void Append(const Row& r) {
    for (size_t c = 0; c < cols_.size(); ++c) cols_[c].push_back(r[c]);
    ++num_rows_;
  }

  /// Appends live row `row` of `batch` (pass-through emission).
  void AppendFrom(const RowBatch& batch, size_t row) {
    uint32_t phys = batch.selection()[row];
    for (size_t c = 0; c < cols_.size(); ++c) {
      cols_[c].push_back(batch.ValueAt(c, phys));
    }
    ++num_rows_;
  }

  /// The accumulated rows as a dense batch; the appender is left empty.
  RowBatch TakeBatch() {
    std::vector<RowBatch::ColumnPtr> cols;
    cols.reserve(cols_.size());
    for (auto& c : cols_) {
      cols.push_back(std::make_shared<RowBatch::Column>(std::move(c)));
      c.clear();
    }
    RowBatch out = RowBatch::FromColumns(
        std::move(cols), std::vector<uint32_t>(cols_.size(), 1), num_rows_);
    num_rows_ = 0;
    return out;
  }

 private:
  std::vector<RowBatch::Column> cols_;
  size_t num_rows_ = 0;
};

}  // namespace stubby

#include "mr/job_config.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace stubby {

bool JobConfig::operator==(const JobConfig& other) const {
  return num_reduce_tasks == other.num_reduce_tasks &&
         io_sort_mb == other.io_sort_mb &&
         io_sort_factor == other.io_sort_factor &&
         use_combiner == other.use_combiner &&
         compress_map_output == other.compress_map_output &&
         compress_output == other.compress_output &&
         split_mb == other.split_mb;
}

std::string JobConfig::ToString() const {
  return StrFormat(
      "reduce_tasks=%d,io_sort_mb=%.0f,io_sort_factor=%d,combiner=%d,"
      "compress_map=%d,compress_out=%d,split_mb=%.0f",
      num_reduce_tasks, io_sort_mb, io_sort_factor, use_combiner ? 1 : 0,
      compress_map_output ? 1 : 0, compress_output ? 1 : 0, split_mb);
}

ConfigSpace ConfigSpace::Default(int max_reduce_tasks, bool has_combiner) {
  ConfigSpace space;
  space.dims_ = {
      {"num_reduce_tasks", 1.0,
       static_cast<double>(std::max(1, 2 * max_reduce_tasks)), true},
      {"io_sort_mb", 16.0, 512.0, true},
      {"io_sort_factor", 2.0, 100.0, true},
      {"compress_map_output", 0.0, 1.0, true},
      {"compress_output", 0.0, 1.0, true},
      {"split_mb", 16.0, 256.0, true},
  };
  if (has_combiner) {
    space.dims_.push_back({"use_combiner", 0.0, 1.0, true});
  }
  return space;
}

ConfigSpace ConfigSpace::FromDims(std::vector<ConfigDimension> dims) {
  ConfigSpace space;
  space.dims_ = std::move(dims);
  return space;
}

JobConfig ConfigSpace::PointToConfig(const std::vector<double>& unit_point,
                                     const JobConfig& base) const {
  JobConfig out = base;
  for (size_t i = 0; i < dims_.size() && i < unit_point.size(); ++i) {
    const ConfigDimension& d = dims_[i];
    double u = std::clamp(unit_point[i], 0.0, 1.0);
    double v = d.lo + u * (d.hi - d.lo);
    if (d.integral) v = std::round(v);
    if (d.name == "num_reduce_tasks") {
      out.num_reduce_tasks = static_cast<int>(v);
    } else if (d.name == "io_sort_mb") {
      out.io_sort_mb = v;
    } else if (d.name == "io_sort_factor") {
      out.io_sort_factor = static_cast<int>(v);
    } else if (d.name == "compress_map_output") {
      out.compress_map_output = v >= 0.5;
    } else if (d.name == "compress_output") {
      out.compress_output = v >= 0.5;
    } else if (d.name == "split_mb") {
      out.split_mb = v;
    } else if (d.name == "use_combiner") {
      out.use_combiner = v >= 0.5;
    }
  }
  return out;
}

std::vector<double> ConfigSpace::ConfigToPoint(const JobConfig& config) const {
  std::vector<double> out;
  out.reserve(dims_.size());
  for (const ConfigDimension& d : dims_) {
    double v = 0.0;
    if (d.name == "num_reduce_tasks") {
      v = config.num_reduce_tasks;
    } else if (d.name == "io_sort_mb") {
      v = config.io_sort_mb;
    } else if (d.name == "io_sort_factor") {
      v = config.io_sort_factor;
    } else if (d.name == "compress_map_output") {
      v = config.compress_map_output ? 1.0 : 0.0;
    } else if (d.name == "compress_output") {
      v = config.compress_output ? 1.0 : 0.0;
    } else if (d.name == "split_mb") {
      v = config.split_mb;
    } else if (d.name == "use_combiner") {
      v = config.use_combiner ? 1.0 : 0.0;
    }
    double u = (d.hi == d.lo) ? 0.0 : (v - d.lo) / (d.hi - d.lo);
    out.push_back(std::clamp(u, 0.0, 1.0));
  }
  return out;
}

}  // namespace stubby

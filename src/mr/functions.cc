#include "mr/functions.h"

namespace stubby {

std::shared_ptr<MapFn> MakeIdentityMap(const Schema& schema) {
  return std::make_shared<LambdaMapFn>(
      "identity", schema, schema,
      [](const Row& in, Emitter* out) { out->Emit(in); },
      /*cpu_weight=*/0.1);
}

}  // namespace stubby

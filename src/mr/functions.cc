#include "mr/functions.h"

namespace stubby {

std::shared_ptr<MapFn> MakeIdentityMap(const Schema& schema) {
  auto fn = std::make_shared<LambdaMapFn>(
      "identity", schema, schema,
      [](const Row& in, Emitter* out) { out->Emit(in); },
      /*cpu_weight=*/0.1);
  fn->set_batch_fn([](RowBatch* batch) { (void)batch; });
  return fn;
}

}  // namespace stubby

#include "mr/partitioner.h"

#include <algorithm>

#include "common/strings.h"

namespace stubby {

const char* PartitionTypeName(PartitionType t) {
  switch (t) {
    case PartitionType::kHash:
      return "hash";
    case PartitionType::kRange:
      return "range";
  }
  return "?";
}

PartitionSpec PartitionSpec::DefaultFor(
    const std::vector<std::string>& key_fields) {
  PartitionSpec spec;
  spec.type = PartitionType::kHash;
  spec.partition_fields = key_fields;
  spec.sort_fields = key_fields;
  return spec;
}

bool PartitionSpec::operator==(const PartitionSpec& other) const {
  return type == other.type && partition_fields == other.partition_fields &&
         sort_fields == other.sort_fields &&
         split_points == other.split_points &&
         split_points_from == other.split_points_from;
}

std::string PartitionSpec::ToString() const {
  std::string out = PartitionTypeName(type);
  out += "(" + Join(partition_fields, ",") + ")";
  if (!split_points.empty()) {
    out += StrFormat(" splits=%zu", split_points.size());
  }
  if (sort_fields != partition_fields) {
    out += " sort(" + Join(sort_fields, ",") + ")";
  }
  return out;
}

Result<Partitioner> Partitioner::Make(const PartitionSpec& spec,
                                      const Schema& schema,
                                      int num_partitions) {
  Partitioner p;
  p.spec_ = spec;
  STUBBY_ASSIGN_OR_RETURN(p.partition_indices_,
                          schema.IndicesOf(spec.partition_fields));
  STUBBY_ASSIGN_OR_RETURN(p.sort_indices_, schema.IndicesOf(spec.sort_fields));
  if (spec.type == PartitionType::kRange) {
    for (const Row& s : spec.split_points) {
      if (s.size() != spec.partition_fields.size()) {
        return Status::InvalidArgument(
            "range split point arity does not match partition fields");
      }
    }
    if (num_partitions > 0 &&
        static_cast<int>(spec.split_points.size()) + 1 > num_partitions) {
      return Status::InvalidArgument(StrFormat(
          "range partition spec defines %d partitions but the job runs only "
          "%d reduce tasks; the excess key ranges would silently fold into "
          "the last partition",
          static_cast<int>(spec.split_points.size()) + 1, num_partitions));
    }
  }
  return p;
}

int Partitioner::PartitionOf(const Row& row, int num_partitions) const {
  if (num_partitions <= 1) return 0;
  if (spec_.type == PartitionType::kHash) {
    uint64_t h = HashOnFields(row, partition_indices_);
    return static_cast<int>(h % static_cast<uint64_t>(num_partitions));
  }
  // Range: projected key compared against sorted split points. Make()
  // guarantees splits+1 <= num_partitions for executor-created
  // partitioners, so the clamp below cannot silently merge key ranges.
  Row key = row.Project(partition_indices_);
  auto it = std::upper_bound(
      spec_.split_points.begin(), spec_.split_points.end(), key,
      [](const Row& a, const Row& b) { return a < b; });
  int idx = static_cast<int>(it - spec_.split_points.begin());
  return std::min(idx, num_partitions - 1);
}

int Partitioner::PartitionOf(const RowBatch& batch, size_t row,
                             int num_partitions) const {
  if (num_partitions <= 1) return 0;
  if (spec_.type == PartitionType::kHash) {
    uint64_t h = batch.HashOnFields(row, partition_indices_);
    return static_cast<int>(h % static_cast<uint64_t>(num_partitions));
  }
  Row key;
  for (size_t i : partition_indices_) key.Append(batch.At(row, i));
  auto it = std::upper_bound(
      spec_.split_points.begin(), spec_.split_points.end(), key,
      [](const Row& a, const Row& b) { return a < b; });
  int idx = static_cast<int>(it - spec_.split_points.begin());
  return std::min(idx, num_partitions - 1);
}

}  // namespace stubby

// JobConfig: the per-job configuration that Stubby's configuration
// transformation (Section 3.5) searches over, modeled on the Hadoop
// parameters highlighted in the paper (Figure 8): number of reduce tasks,
// map-output sort buffer, merge factor, combiner toggle, and map/reduce
// output compression.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace stubby {

/// Configuration of one MapReduce job (the `c` of J = <p, c, a>).
struct JobConfig {
  /// Number of reduce tasks. Ignored for map-only jobs.
  int num_reduce_tasks = 1;

  /// Map-output buffer for two-phase sorting, in MB (io.sort.mb). Smaller
  /// buffers spill more often and re-merge more.
  double io_sort_mb = 128.0;

  /// Fan-in of multi-pass merges (io.sort.factor).
  int io_sort_factor = 10;

  /// Whether the combine function (if the program has one) runs on spills.
  bool use_combiner = false;

  /// Compress map output between map and reduce.
  bool compress_map_output = false;

  /// Compress the job's output dataset (affects the dataset layout).
  bool compress_output = false;

  /// Input split size in MB; determines the number of map tasks as
  /// ceil(input_bytes / split_mb).
  double split_mb = 64.0;

  bool operator==(const JobConfig& other) const;

  /// Short "k=v,..." rendering.
  std::string ToString() const;
};

/// One dimension of the configuration search space.
struct ConfigDimension {
  std::string name;
  double lo;
  double hi;
  bool integral;  ///< round sample to nearest integer
};

/// The configuration space searched by RRS (Section 4.2). Points are vectors
/// in [0,1]^d mapped onto the dimensions.
class ConfigSpace {
 public:
  /// Default space over the six JobConfig knobs for a cluster with
  /// `max_reduce_tasks` total reduce slots. `has_combiner` excludes the
  /// combiner toggle when the program has no combine function.
  static ConfigSpace Default(int max_reduce_tasks, bool has_combiner);

  /// Space with an explicit dimension list.
  static ConfigSpace FromDims(std::vector<ConfigDimension> dims);

  const std::vector<ConfigDimension>& dims() const { return dims_; }
  size_t size() const { return dims_.size(); }

  /// Maps a unit-cube point to a JobConfig, starting from `base` so that
  /// dimensions not in the space keep their current values.
  JobConfig PointToConfig(const std::vector<double>& unit_point,
                          const JobConfig& base) const;

  /// Inverse of PointToConfig for the dimensions in this space (values are
  /// clamped into [0,1]).
  std::vector<double> ConfigToPoint(const JobConfig& config) const;

 private:
  std::vector<ConfigDimension> dims_;
};

}  // namespace stubby

// ClusterSpec: the cluster setup and resource allocation input of the
// what-if engine (Section 5, input 4): node/slot counts plus calibrated
// throughput constants for the analytical phase model. Defaults mirror the
// paper's evaluation cluster: 51 EC2 m1.large nodes, 3 map + 2 reduce slots
// per node (150 concurrent map tasks, 100 concurrent reduce tasks).

#pragma once

#include <string>

namespace stubby {

/// Static description of the simulated cluster.
struct ClusterSpec {
  int num_nodes = 51;
  int map_slots_per_node = 3;
  int reduce_slots_per_node = 2;

  // Throughputs per task, MB/s. Values are in the ballpark of 2012-era EC2
  // m1.large instances; absolute numbers only scale costs, the reproduction
  // targets relative plan ordering.
  double disk_read_mbps = 90.0;
  double disk_write_mbps = 70.0;
  double network_mbps = 35.0;   ///< effective per-task shuffle bandwidth
  double dfs_write_mbps = 45.0; ///< DFS write incl. replication pipeline

  /// CPU time per record per unit of UDF cost weight, nanoseconds.
  double cpu_ns_per_record_unit = 450.0;

  /// Sort cost: ns per record per binary-merge level (n log n model).
  double sort_ns_per_record = 110.0;

  /// Fixed scheduling/JVM overhead per task, seconds.
  double task_startup_sec = 1.2;

  /// Per-job submission/initialization overhead, seconds. This is what makes
  /// many tiny jobs slower than one packed job even on tiny data.
  double job_startup_sec = 6.0;

  /// Compression model: compressed size = ratio * raw size; (de)compression
  /// runs at the given throughputs.
  double compress_ratio = 0.35;
  double compress_mbps = 200.0;
  double decompress_mbps = 450.0;

  /// Memory per task slot, MB (bounds io_sort_mb usefulness and models the
  /// resource-contention penalty of packing many pipelines into one task).
  double task_memory_mb = 1024.0;

  int total_map_slots() const { return num_nodes * map_slots_per_node; }
  int total_reduce_slots() const { return num_nodes * reduce_slots_per_node; }

  std::string ToString() const;
};

}  // namespace stubby

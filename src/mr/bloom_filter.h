// Deterministic blocked Bloom filter for the predicate-transfer
// transformation (optimizer/bloom.h): the build pass inserts the join-key
// hashes of the smaller input, the probe pre-filter drops map-output rows
// of the other inputs whose key cannot join. Layout (block count, hash
// count, seed) is fixed at construction and every operation is a pure
// function of (layout, inserted hash multiset), so filters built from the
// same rows are bit-identical at any thread count: per-task partial
// filters OR-merge into the same bit pattern regardless of insertion
// order or task boundaries.
//
// Blocked layout: the filter is an array of 64-byte (8-word) blocks; a
// key's block is chosen from the high bits of its first derived hash and
// all of its `num_hashes` bits land inside that block (one cache line per
// probe). False positives are possible, false negatives are not — the
// property the conditions ledger relies on (a false positive only passes
// a row the join itself discards).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mr/functions.h"

namespace stubby {

/// CPU cost units per record of hashing a row's key fields and touching
/// one filter cache line — shared by the probe stage's cost and the
/// what-if pricing of the build pass.
inline constexpr double kBloomHashCpuPerRecord = 0.25;

/// Fixed seed the executor builds every predicate-transfer filter with:
/// part of the deterministic filter layout, so filters built from the same
/// build-side rows are bit-identical across runs and thread counts.
inline constexpr uint64_t kBloomFilterSeed = 0x73747562627962ull;  // "stubby b"

class BloomFilter {
 public:
  /// `bits_log2` in [10, 30]: total filter size is 2^bits_log2 bits.
  /// `num_hashes` in [1, 8]: bits set per key (all within one block).
  /// `seed` perturbs the hash derivation so independent filters over the
  /// same keys are independent.
  BloomFilter(int bits_log2, int num_hashes, uint64_t seed);

  /// Inserts a key hash (as produced by HashOnFields over the key columns).
  void Insert(uint64_t hash);

  /// True when the key hash may have been inserted; never false for an
  /// inserted hash.
  bool MayContain(uint64_t hash) const;

  /// OR-merges `other` into this filter. Layouts must match (same
  /// bits_log2, num_hashes, seed).
  void UnionWith(const BloomFilter& other);

  int bits_log2() const { return bits_log2_; }
  int num_hashes() const { return num_hashes_; }
  uint64_t seed() const { return seed_; }
  uint64_t SizeBytes() const { return words_.size() * sizeof(uint64_t); }

  /// Fraction of set bits (diagnostic; drives no decision).
  double FillFraction() const;

  /// Smallest bits_log2 in [10, cap] giving >= `bits_per_key` bits per
  /// expected key (the transform's sizing rule).
  static int SizeForKeys(uint64_t expected_keys, int bits_per_key = 10,
                         int cap = 24);

 private:
  /// Word index of the first word of the key's block plus its in-block bit
  /// positions, derived from two splitmix-style hashes.
  struct Probe {
    size_t block_word;
    uint32_t bits[8];
  };
  Probe ProbeFor(uint64_t hash) const;

  int bits_log2_;
  int num_hashes_;
  uint64_t seed_;
  size_t num_blocks_;  // 8-word (512-bit) blocks
  std::vector<uint64_t> words_;
};

/// Pre-filter map stage the transform appends to each probe input: passes
/// a row iff the Bloom filter may contain its key-field hash. The plan
/// carries the stage *unbound* (null filter = pass-through, which is
/// always correct by the false-positive-only argument and keeps
/// profiling, validation, and serialization oblivious to execution
/// state); the executor binds the built filter per run via Bind(). Input
/// and output schemas are identical — the stage only drops rows.
class BloomProbeMapFn : public MapFn {
 public:
  /// `key_fields` name columns of `schema`; unknown names are resolved to
  /// no-op (the transform validates them against the map-output schema
  /// before constructing the stage).
  BloomProbeMapFn(std::string name, Schema schema,
                  std::vector<std::string> key_fields);

  void Map(const Row& in, Emitter* out) override;
  std::string name() const override { return name_; }
  const Schema& input_schema() const override { return schema_; }
  const Schema& output_schema() const override { return schema_; }
  /// One hash + one cache-line probe: far below a generic UDF record.
  double cpu_cost_per_record() const override {
    return kBloomHashCpuPerRecord;
  }
  bool stateless() const override { return true; }
  bool supports_batch() const override { return true; }

  /// Columnar probe: narrows the selection to rows whose key hash may be
  /// in the filter. Hash parity with the row path is guaranteed by
  /// RowBatch::HashOnFields' documented contract.
  void MapBatch(RowBatch* batch) override;

  std::shared_ptr<MapFn> Clone() const override {
    return std::make_shared<BloomProbeMapFn>(*this);
  }

  /// A copy of this stage with `filter` attached (the executor's per-run
  /// binding step). The plan's own instance stays unbound.
  std::shared_ptr<BloomProbeMapFn> Bind(
      std::shared_ptr<const BloomFilter> filter) const;

  const std::vector<std::string>& key_fields() const { return key_fields_; }
  bool bound() const { return filter_ != nullptr; }

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::string> key_fields_;
  std::vector<size_t> key_indices_;
  std::shared_ptr<const BloomFilter> filter_;  // null = pass-through
};

}  // namespace stubby

// User-defined function interfaces of the MapReduce programming model
// (Section 2.1 of the paper): map, reduce, combine. The partition function
// is modeled separately in mr/partitioner.h because Stubby's partition
// function transformation manipulates it as data.
//
// Functions are black boxes to the optimizer; the executor calls them on
// real rows. Schema information is exposed to the optimizer only through
// annotations (workflow/annotations.h), mirroring the paper's information
// spectrum: a function may well have a schema the optimizer never sees.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mr/row_batch.h"
#include "mr/schema.h"
#include "mr/tuple.h"

namespace stubby {

/// Sink for rows produced by a UDF invocation.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(Row row) = 0;
};

/// Emitter that buffers into a vector (used by tests and simple stages).
class VectorEmitter : public Emitter {
 public:
  void Emit(Row row) override { rows_.push_back(std::move(row)); }
  std::vector<Row>& rows() { return rows_; }
  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

/// map(K1,V1) => list(K2,V2). One instance is cloned per task so stateful
/// functions (samplers, top-K) see task-local state.
class MapFn {
 public:
  virtual ~MapFn() = default;

  /// Invoked once per input row.
  virtual void Map(const Row& in, Emitter* out) = 0;

  /// Called before the first / after the last row of a task. Finish may emit
  /// (e.g. a per-task top-K flush).
  virtual void Setup() {}
  virtual void Finish(Emitter* out) { (void)out; }

  virtual std::string name() const = 0;
  /// Row type consumed (K1+V1 fields) and produced (K2+V2 fields).
  virtual const Schema& input_schema() const = 0;
  virtual const Schema& output_schema() const = 0;

  /// Relative per-record compute weight used by the cost model (1.0 = a
  /// trivial pass-through).
  virtual double cpu_cost_per_record() const { return 1.0; }

  /// True when the function is row-wise pure: output depends only on the
  /// current input row (no cross-row task state, nothing emitted from
  /// Finish). Stateless pipelines produce the same concatenated output
  /// stream regardless of how the input is chunked into tasks — the
  /// property the result-reuse subsystem needs to match map-only prefixes
  /// across jobs with different task boundaries. Conservatively false for
  /// hand-written subclasses (samplers, top-K).
  virtual bool stateless() const { return false; }

  /// True when the function also implements MapBatch. The vectorized
  /// executor batches a pipeline only if every stage is a stateless map
  /// that supports batching; otherwise the whole pipeline falls back to
  /// row-at-a-time execution (exec/wrappers.h explains why the fallback is
  /// all-or-nothing).
  virtual bool supports_batch() const { return false; }

  /// Columnar equivalent of Map over every live row of `batch`, in order.
  /// Must be structural: narrow the selection and/or replace, reorder, or
  /// append columns, never renumber the physical index space. Each live
  /// input row must produce zero or one output row (the one at the same
  /// physical index) — exactly what Map would have emitted for it. Only
  /// called when supports_batch() is true.
  virtual void MapBatch(RowBatch* batch) { (void)batch; }

  /// Fresh instance with reset state for a new task.
  virtual std::shared_ptr<MapFn> Clone() const = 0;
};

/// reduce(K2, list(V2)) => list(K3,V3). `key` carries the grouping-field
/// values; `group` carries full map-output rows of that group.
class ReduceFn {
 public:
  virtual ~ReduceFn() = default;

  virtual void Reduce(const Row& key, const std::vector<Row>& group,
                      Emitter* out) = 0;
  virtual void Setup() {}
  virtual void Finish(Emitter* out) { (void)out; }

  virtual std::string name() const = 0;
  /// Row type produced (K3+V3 fields).
  virtual const Schema& output_schema() const = 0;
  virtual double cpu_cost_per_record() const { return 1.0; }

  /// True when the function is group-wise pure: output depends only on the
  /// current (key, group) — no cross-group task state, nothing emitted from
  /// Finish. Required for the batched reduce path, which replays groups
  /// without per-task Setup/Finish bracketing. Conservatively false for
  /// hand-written subclasses.
  virtual bool stateless() const { return false; }

  /// True when the function also implements ReduceBatch. The executor
  /// batches a reduce pipeline only if its single reduce stage is a
  /// stateless, tee-free reducer that supports batching; otherwise the
  /// whole reduce task falls back to row-at-a-time execution.
  virtual bool supports_batch() const { return false; }

  /// Columnar equivalent of Reduce over the group occupying selection
  /// positions [lo, hi) of `in` (rows already sorted and grouped on
  /// `key_indices`). Must append to `out` exactly the rows Reduce would
  /// emit for (key, group) — same values, same order, same floating-point
  /// fold order. Only called when supports_batch() is true.
  virtual void ReduceBatch(const RowBatch& in, size_t lo, size_t hi,
                           const std::vector<size_t>& key_indices,
                           ColumnAppender* out) {
    (void)in;
    (void)lo;
    (void)hi;
    (void)key_indices;
    (void)out;
  }

  virtual std::shared_ptr<ReduceFn> Clone() const = 0;
};

/// combine(K2, list(V2)) => list(K2,V2): map-side preaggregation. Input and
/// output row types are identical by definition.
class CombineFn {
 public:
  virtual ~CombineFn() = default;

  virtual void Combine(const Row& key, const std::vector<Row>& group,
                       Emitter* out) = 0;
  virtual std::string name() const = 0;
  virtual double cpu_cost_per_record() const { return 1.0; }

  /// True when the function also implements CombineBatch (columnar map-side
  /// preaggregation over shuffle buckets).
  virtual bool supports_batch() const { return false; }

  /// Columnar equivalent of Combine over the equal-key run occupying
  /// selection positions [lo, hi) of `in`. Must append to `out` exactly the
  /// rows Combine would emit. Only called when supports_batch() is true.
  virtual void CombineBatch(const RowBatch& in, size_t lo, size_t hi,
                            ColumnAppender* out) {
    (void)in;
    (void)lo;
    (void)hi;
    (void)out;
  }

  virtual std::shared_ptr<CombineFn> Clone() const = 0;
};

// ---------------------------------------------------------------------------
// std::function adapters: convenient for tests, examples, and workloads that
// do not need per-task state.
// ---------------------------------------------------------------------------

/// MapFn from a lambda `(const Row&, Emitter*)`. The lambda must be
/// row-wise pure (it cannot be otherwise through this interface: there is
/// no Finish hook and captures are copied per Clone), so lambda maps are
/// stateless by construction.
class LambdaMapFn : public MapFn {
 public:
  using Fn = std::function<void(const Row&, Emitter*)>;
  using BatchFn = std::function<void(RowBatch*)>;

  LambdaMapFn(std::string name, Schema in, Schema out, Fn fn,
              double cpu_weight = 1.0)
      : name_(std::move(name)),
        in_(std::move(in)),
        out_(std::move(out)),
        fn_(std::move(fn)),
        cpu_weight_(cpu_weight) {}

  void Map(const Row& in, Emitter* out) override { fn_(in, out); }
  std::string name() const override { return name_; }
  const Schema& input_schema() const override { return in_; }
  const Schema& output_schema() const override { return out_; }
  double cpu_cost_per_record() const override { return cpu_weight_; }
  bool stateless() const override { return true; }
  bool supports_batch() const override { return batch_fn_ != nullptr; }
  void MapBatch(RowBatch* batch) override { batch_fn_(batch); }
  std::shared_ptr<MapFn> Clone() const override {
    return std::make_shared<LambdaMapFn>(*this);
  }

  /// Installs the columnar kernel; it must agree row-for-row with `fn`.
  void set_batch_fn(BatchFn batch_fn) { batch_fn_ = std::move(batch_fn); }

 private:
  std::string name_;
  Schema in_, out_;
  Fn fn_;
  BatchFn batch_fn_;
  double cpu_weight_;
};

/// ReduceFn from a lambda `(const Row& key, const std::vector<Row>&,
/// Emitter*)`. Group-wise pure by construction (no Finish hook; captures
/// are copied per Clone), so lambda reducers are stateless.
class LambdaReduceFn : public ReduceFn {
 public:
  using Fn =
      std::function<void(const Row&, const std::vector<Row>&, Emitter*)>;
  using BatchFn = std::function<void(const RowBatch&, size_t, size_t,
                                     const std::vector<size_t>&,
                                     ColumnAppender*)>;

  LambdaReduceFn(std::string name, Schema out, Fn fn,
                 double cpu_weight = 1.0)
      : name_(std::move(name)),
        out_(std::move(out)),
        fn_(std::move(fn)),
        cpu_weight_(cpu_weight) {}

  void Reduce(const Row& key, const std::vector<Row>& group,
              Emitter* out) override {
    fn_(key, group, out);
  }
  std::string name() const override { return name_; }
  const Schema& output_schema() const override { return out_; }
  double cpu_cost_per_record() const override { return cpu_weight_; }
  bool stateless() const override { return true; }
  bool supports_batch() const override { return batch_fn_ != nullptr; }
  void ReduceBatch(const RowBatch& in, size_t lo, size_t hi,
                   const std::vector<size_t>& key_indices,
                   ColumnAppender* out) override {
    batch_fn_(in, lo, hi, key_indices, out);
  }
  std::shared_ptr<ReduceFn> Clone() const override {
    return std::make_shared<LambdaReduceFn>(*this);
  }

  /// Installs the columnar kernel; it must agree row-for-row with `fn`.
  void set_batch_fn(BatchFn batch_fn) { batch_fn_ = std::move(batch_fn); }

 private:
  std::string name_;
  Schema out_;
  Fn fn_;
  BatchFn batch_fn_;
  double cpu_weight_;
};

/// CombineFn from a lambda.
class LambdaCombineFn : public CombineFn {
 public:
  using Fn =
      std::function<void(const Row&, const std::vector<Row>&, Emitter*)>;
  using BatchFn =
      std::function<void(const RowBatch&, size_t, size_t, ColumnAppender*)>;

  LambdaCombineFn(std::string name, Fn fn, double cpu_weight = 1.0)
      : name_(std::move(name)), fn_(std::move(fn)), cpu_weight_(cpu_weight) {}

  void Combine(const Row& key, const std::vector<Row>& group,
               Emitter* out) override {
    fn_(key, group, out);
  }
  std::string name() const override { return name_; }
  double cpu_cost_per_record() const override { return cpu_weight_; }
  bool supports_batch() const override { return batch_fn_ != nullptr; }
  void CombineBatch(const RowBatch& in, size_t lo, size_t hi,
                    ColumnAppender* out) override {
    batch_fn_(in, lo, hi, out);
  }
  std::shared_ptr<CombineFn> Clone() const override {
    return std::make_shared<LambdaCombineFn>(*this);
  }

  /// Installs the columnar kernel; it must agree row-for-row with `fn`.
  void set_batch_fn(BatchFn batch_fn) { batch_fn_ = std::move(batch_fn); }

 private:
  std::string name_;
  Fn fn_;
  BatchFn batch_fn_;
  double cpu_weight_;
};

/// Identity map function (emits its input row unchanged) — the implicit map
/// of jobs whose work is all in the reduce.
std::shared_ptr<MapFn> MakeIdentityMap(const Schema& schema);

}  // namespace stubby

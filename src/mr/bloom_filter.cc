#include "mr/bloom_filter.h"

#include <algorithm>

namespace stubby {

namespace {

constexpr size_t kWordsPerBlock = 8;  // 512-bit (64-byte) blocks
constexpr uint32_t kBitsPerBlock = kWordsPerBlock * 64;

/// splitmix64 finalizer: full-avalanche mixing of the key hash with the
/// filter seed, so filter bit positions are decorrelated from whatever
/// structure HashOnFields left in the input.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

BloomFilter::BloomFilter(int bits_log2, int num_hashes, uint64_t seed)
    : bits_log2_(std::clamp(bits_log2, 10, 30)),
      num_hashes_(std::clamp(num_hashes, 1, 8)),
      seed_(seed) {
  const uint64_t bits = 1ull << bits_log2_;
  num_blocks_ = static_cast<size_t>(bits / kBitsPerBlock);
  words_.assign(num_blocks_ * kWordsPerBlock, 0);
}

BloomFilter::Probe BloomFilter::ProbeFor(uint64_t hash) const {
  const uint64_t h1 = Mix(hash ^ seed_);
  const uint64_t h2 = Mix(h1 ^ 0xa0761d6478bd642full) | 1;  // odd: full cycle
  Probe p;
  // High bits pick the block; low bits walk the double-hash sequence.
  p.block_word = static_cast<size_t>((h1 >> 32) % num_blocks_) *
                 kWordsPerBlock;
  uint64_t h = h1;
  for (int i = 0; i < num_hashes_; ++i) {
    p.bits[i] = static_cast<uint32_t>(h % kBitsPerBlock);
    h += h2;
  }
  return p;
}

void BloomFilter::Insert(uint64_t hash) {
  const Probe p = ProbeFor(hash);
  for (int i = 0; i < num_hashes_; ++i) {
    words_[p.block_word + p.bits[i] / 64] |= 1ull << (p.bits[i] % 64);
  }
}

bool BloomFilter::MayContain(uint64_t hash) const {
  const Probe p = ProbeFor(hash);
  for (int i = 0; i < num_hashes_; ++i) {
    if ((words_[p.block_word + p.bits[i] / 64] &
         (1ull << (p.bits[i] % 64))) == 0) {
      return false;
    }
  }
  return true;
}

void BloomFilter::UnionWith(const BloomFilter& other) {
  if (other.words_.size() != words_.size()) return;
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

double BloomFilter::FillFraction() const {
  uint64_t set = 0;
  for (uint64_t w : words_) set += static_cast<uint64_t>(__builtin_popcountll(w));
  return words_.empty() ? 0.0
                        : static_cast<double>(set) /
                              static_cast<double>(words_.size() * 64);
}

int BloomFilter::SizeForKeys(uint64_t expected_keys, int bits_per_key,
                             int cap) {
  const uint64_t want =
      std::max<uint64_t>(1, expected_keys) *
      static_cast<uint64_t>(std::max(1, bits_per_key));
  int log2 = 10;
  while (log2 < cap && (1ull << log2) < want) ++log2;
  return log2;
}

BloomProbeMapFn::BloomProbeMapFn(std::string name, Schema schema,
                                 std::vector<std::string> key_fields)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      key_fields_(std::move(key_fields)) {
  for (const std::string& f : key_fields_) {
    if (auto idx = schema_.IndexOf(f)) key_indices_.push_back(*idx);
  }
}

void BloomProbeMapFn::Map(const Row& in, Emitter* out) {
  if (filter_ == nullptr ||
      filter_->MayContain(HashOnFields(in, key_indices_))) {
    out->Emit(in);
  }
}

void BloomProbeMapFn::MapBatch(RowBatch* batch) {
  if (filter_ == nullptr) return;  // pass-through, selection untouched
  // HashOnFields takes a selection position while the new selection lists
  // physical ids, so walk positions and keep the corresponding physical
  // index — an ascending subset, as the batch-map contract requires.
  const std::vector<uint32_t>& sel = batch->selection();
  std::vector<uint32_t> keep;
  keep.reserve(sel.size());
  for (size_t pos = 0; pos < sel.size(); ++pos) {
    if (filter_->MayContain(batch->HashOnFields(pos, key_indices_))) {
      keep.push_back(sel[pos]);
    }
  }
  batch->SetSelection(std::move(keep));
}

std::shared_ptr<BloomProbeMapFn> BloomProbeMapFn::Bind(
    std::shared_ptr<const BloomFilter> filter) const {
  auto bound = std::make_shared<BloomProbeMapFn>(*this);
  bound->filter_ = std::move(filter);
  return bound;
}

}  // namespace stubby

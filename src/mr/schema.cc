#include "mr/schema.h"

#include <algorithm>

#include "common/strings.h"

namespace stubby {

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i] == name) return i;
  }
  return std::nullopt;
}

Result<std::vector<size_t>> Schema::IndicesOf(
    const std::vector<std::string>& names) const {
  std::vector<size_t> out;
  out.reserve(names.size());
  for (const auto& n : names) {
    auto idx = IndexOf(n);
    if (!idx) {
      return Status::NotFound("field '" + n + "' not in schema " +
                              ToString());
    }
    out.push_back(*idx);
  }
  return out;
}

bool Schema::Contains(const FieldSet& names) const {
  return std::all_of(names.begin(), names.end(),
                     [&](const std::string& n) { return Contains(n); });
}

bool Schema::Contains(const std::string& name) const {
  return IndexOf(name).has_value();
}

FieldSet Schema::AsSet() const {
  return FieldSet(fields_.begin(), fields_.end());
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<std::string> out = fields_;
  for (const auto& f : other.fields_) {
    std::string name = f;
    int suffix = 1;
    while (std::find(out.begin(), out.end(), name) != out.end()) {
      name = f + "#" + std::to_string(suffix++);
    }
    out.push_back(name);
  }
  return Schema(std::move(out));
}

std::string Schema::ToString() const {
  return "<" + Join(fields_, ",") + ">";
}

FieldSet Intersect(const FieldSet& a, const FieldSet& b) {
  FieldSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(out, out.begin()));
  return out;
}

FieldSet Union(const FieldSet& a, const FieldSet& b) {
  FieldSet out = a;
  out.insert(b.begin(), b.end());
  return out;
}

FieldSet Minus(const FieldSet& a, const FieldSet& b) {
  FieldSet out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::inserter(out, out.begin()));
  return out;
}

bool IsSubset(const FieldSet& sub, const FieldSet& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

std::string FieldSetToString(const FieldSet& s) {
  return "{" + Join(s, ",") + "}";
}

}  // namespace stubby

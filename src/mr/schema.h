// Schema: ordered list of field names describing the composition of rows in
// a dataset or of the key/value types of a MapReduce program (the paper's
// schema annotations, Section 2.2). Identical field names across schemas
// indicate data that flows unchanged through black-box functions.

#pragma once

#include <initializer_list>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"

namespace stubby {

/// Set of field names — used for annotation keys like J5.K2 = {O, Z}.
using FieldSet = std::set<std::string>;

/// Ordered field-name list for a row type.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<std::string> fields) : fields_(fields) {}
  explicit Schema(std::vector<std::string> fields)
      : fields_(std::move(fields)) {}

  size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }
  const std::string& field(size_t i) const { return fields_[i]; }
  const std::vector<std::string>& fields() const { return fields_; }

  /// Index of `name`, or nullopt if absent.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// Indices of every name in `names`, in the order given; error if any name
  /// is missing from this schema.
  Result<std::vector<size_t>> IndicesOf(
      const std::vector<std::string>& names) const;

  /// True if every field in `names` appears in this schema.
  bool Contains(const FieldSet& names) const;
  bool Contains(const std::string& name) const;

  /// All field names as a set.
  FieldSet AsSet() const;

  /// Schema with `other`'s fields appended (duplicates suffixed with '#n' to
  /// stay unique). Used when packing pipelines concatenates value fields.
  Schema Concat(const Schema& other) const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }
  bool operator!=(const Schema& other) const { return !(*this == other); }

  /// "<a,b,c>" rendering.
  std::string ToString() const;

 private:
  std::vector<std::string> fields_;
};

/// Set-operations on field sets used by the vertical-packing postconditions
/// (partition on Kp∩Kc, sort on (Kp∩Kc) ++ ((Kp∪Kc) − (Kp∩Kc))).
FieldSet Intersect(const FieldSet& a, const FieldSet& b);
FieldSet Union(const FieldSet& a, const FieldSet& b);
FieldSet Minus(const FieldSet& a, const FieldSet& b);
bool IsSubset(const FieldSet& sub, const FieldSet& super);

/// Renders "{a,b}".
std::string FieldSetToString(const FieldSet& s);

}  // namespace stubby

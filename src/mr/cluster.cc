#include "mr/cluster.h"

#include "common/strings.h"

namespace stubby {

std::string ClusterSpec::ToString() const {
  return StrFormat(
      "cluster{nodes=%d, map_slots=%d, reduce_slots=%d, "
      "disk_r=%.0fMB/s, disk_w=%.0fMB/s, net=%.0fMB/s}",
      num_nodes, total_map_slots(), total_reduce_slots(), disk_read_mbps,
      disk_write_mbps, network_mbps);
}

}  // namespace stubby

#include "mr/tuple.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace stubby {

namespace {
constexpr uint64_t kRowOverheadBytes = 4;  // framing / length prefix
}

uint64_t Row::SerializedSize() const {
  uint64_t total = kRowOverheadBytes;
  for (const auto& v : values_) total += v.SerializedSize();
  return total;
}

Row Row::Project(const std::vector<size_t>& indices) const {
  Row out;
  out.values_.reserve(indices.size());
  for (size_t i : indices) out.values_.push_back(values_[i]);
  return out;
}

bool Row::operator<(const Row& other) const {
  size_t n = std::min(values_.size(), other.values_.size());
  for (size_t i = 0; i < n; ++i) {
    if (values_[i] < other.values_[i]) return true;
    if (other.values_[i] < values_[i]) return false;
  }
  return values_.size() < other.values_.size();
}

uint64_t Row::Hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& v : values_) h = HashCombine(h, v.Hash());
  return h;
}

std::string Row::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

int CompareOnFields(const Row& a, const Row& b,
                    const std::vector<size_t>& indices) {
  for (size_t i : indices) {
    if (a[i] < b[i]) return -1;
    if (b[i] < a[i]) return 1;
  }
  return 0;
}

bool EqualOnFields(const Row& a, const Row& b,
                   const std::vector<size_t>& indices) {
  return CompareOnFields(a, b, indices) == 0;
}

uint64_t HashOnFields(const Row& r, const std::vector<size_t>& indices) {
  uint64_t h = 0x100001b3ULL;
  for (size_t i : indices) h = HashCombine(h, r[i].Hash());
  return h;
}

bool RowApproxEqual(const Row& a, const Row& b, double rel_tol) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].is_string() || b[i].is_string()) {
      if (!(a[i] == b[i])) return false;
      continue;
    }
    double x = a[i].AsDouble();
    double y = b[i].AsDouble();
    double scale = std::max({1.0, std::fabs(x), std::fabs(y)});
    if (std::fabs(x - y) > rel_tol * scale) return false;
  }
  return true;
}

namespace {

// True when no row sorted at or after `b` can approx-match `a`. The sorted
// order is lexicographic, so the first field is non-decreasing down the
// vector; once it exceeds a's first field by more than the tolerance, every
// later row exceeds it too. Deeper fields cannot bound the scan: a later
// row may sort higher via a within-tolerance bump of an *earlier* field
// while agreeing with `a` at the field where `b` overshot, so overshoot in
// any field past the first says nothing about later rows.
bool DefinitelyAfter(const Row& a, const Row& b, double rel_tol) {
  if (a.size() == 0 || b.size() == 0) return false;
  if (a[0].is_string() || b[0].is_string()) {
    // Exact total order across types; string comparison has no tolerance.
    return a[0] < b[0];
  }
  double x = a[0].AsDouble();
  double y = b[0].AsDouble();
  double scale = std::max({1.0, std::fabs(x), std::fabs(y)});
  return y - x > rel_tol * scale;
}

}  // namespace

bool RowsApproxEqual(std::vector<Row> a, std::vector<Row> b,
                     double rel_tol) {
  if (a.size() != b.size()) return false;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  // Rows within tolerance of each other can sort to different positions
  // (the sort is exact, the comparison is not), so pairwise comparison of
  // the sorted vectors gives false negatives. Instead, greedily match each
  // a-row against the window of unmatched b-rows that are within tolerance
  // of it; the window is bounded because sorted rows beyond tolerance can
  // never match.
  std::vector<bool> used(b.size(), false);
  size_t first_unused = 0;
  for (const Row& ra : a) {
    while (first_unused < b.size() && used[first_unused]) ++first_unused;
    bool matched = false;
    for (size_t j = first_unused; j < b.size(); ++j) {
      if (used[j]) continue;
      if (RowApproxEqual(ra, b[j], rel_tol)) {
        used[j] = true;
        matched = true;
        break;
      }
      if (DefinitelyAfter(ra, b[j], rel_tol)) break;
    }
    if (!matched) return false;
  }
  return true;
}

}  // namespace stubby

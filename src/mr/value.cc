#include "mr/value.h"

#include <cmath>

#include "common/strings.h"

namespace stubby {

namespace {
// Rank used to order across types so that sorting mixed columns is total.
int TypeRank(const Value& v) { return v.is_string() ? 1 : 0; }
}  // namespace

uint64_t Value::SerializedSize() const {
  if (is_int()) return 8;
  if (is_double()) return 8;
  return 4 + AsString().size();  // length prefix + bytes
}

bool Value::operator<(const Value& other) const {
  int ra = TypeRank(*this), rb = TypeRank(other);
  if (ra != rb) return ra < rb;
  if (ra == 1) return AsString() < other.AsString();
  return AsDouble() < other.AsDouble();
}

bool Value::operator==(const Value& other) const {
  int ra = TypeRank(*this), rb = TypeRank(other);
  if (ra != rb) return false;
  if (ra == 1) return AsString() == other.AsString();
  return AsDouble() == other.AsDouble();
}

uint64_t Value::Hash() const {
  if (is_string()) return HashString(AsString());
  if (is_int()) {
    uint64_t x = static_cast<uint64_t>(AsInt());
    // splitmix64 finalizer
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }
  double d = AsDouble();
  // Normalize -0.0 and integral doubles so Hash agrees with operator==
  // across int/double representations of the same number.
  if (d == 0.0) d = 0.0;
  if (std::nearbyint(d) == d && std::fabs(d) < 9.2e18) {
    return Value(static_cast<int64_t>(d)).Hash();
  }
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return HashCombine(bits, 0x5bd1e995);
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) return StrFormat("%.6g", AsDouble());
  return AsString();
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace stubby

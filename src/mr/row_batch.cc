#include "mr/row_batch.h"

#include "common/strings.h"

namespace stubby {

namespace {
// Per-row framing overhead; must match kRowOverheadBytes in mr/tuple.cc
// (locked down by RowBatch parity tests).
constexpr uint64_t kRowOverheadBytes = 4;
}  // namespace

RowBatch RowBatch::FromRows(const std::vector<Row>& rows, size_t num_columns) {
  RowBatch batch;
  batch.physical_rows_ = rows.size();
  batch.cols_.reserve(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    auto col = std::make_shared<Column>();
    col->reserve(rows.size());
    for (const Row& r : rows) col->push_back(r[c]);
    batch.cols_.push_back(std::move(col));
  }
  batch.stride_.assign(num_columns, 1);
  batch.sel_.resize(rows.size());
  std::iota(batch.sel_.begin(), batch.sel_.end(), 0u);
  return batch;
}

RowBatch RowBatch::FromColumns(std::vector<ColumnPtr> cols,
                               std::vector<uint32_t> strides,
                               size_t physical_rows) {
  RowBatch batch;
  batch.cols_ = std::move(cols);
  batch.stride_ = std::move(strides);
  batch.physical_rows_ = physical_rows;
  batch.sel_.resize(physical_rows);
  std::iota(batch.sel_.begin(), batch.sel_.end(), 0u);
  return batch;
}

void RowBatch::ProjectColumns(const std::vector<size_t>& indices) {
  std::vector<ColumnPtr> out;
  std::vector<uint32_t> strides;
  out.reserve(indices.size());
  strides.reserve(indices.size());
  for (size_t i : indices) {
    out.push_back(cols_[i]);
    strides.push_back(stride_[i]);
  }
  cols_ = std::move(out);
  stride_ = std::move(strides);
}

void RowBatch::AppendColumn(ColumnPtr col) {
  cols_.push_back(std::move(col));
  stride_.push_back(1);
}

void RowBatch::AppendConstColumn(const Value& v) {
  cols_.push_back(std::make_shared<Column>(1, v));
  stride_.push_back(0);
}

uint64_t RowBatch::RowSerializedSize(size_t row) const {
  uint64_t total = kRowOverheadBytes;
  uint32_t phys = sel_[row];
  for (size_t c = 0; c < cols_.size(); ++c) {
    total += ValueAt(c, phys).SerializedSize();
  }
  return total;
}

uint64_t RowBatch::TotalSerializedBytes() const {
  uint64_t total = 0;
  for (size_t row = 0; row < sel_.size(); ++row) {
    total += RowSerializedSize(row);
  }
  return total;
}

uint64_t RowBatch::RowHash(size_t row) const {
  // Same FNV fold as Row::Hash.
  uint64_t h = 0xcbf29ce484222325ULL;
  uint32_t phys = sel_[row];
  for (size_t c = 0; c < cols_.size(); ++c) {
    h = HashCombine(h, ValueAt(c, phys).Hash());
  }
  return h;
}

uint64_t RowBatch::HashOnFields(size_t row,
                                const std::vector<size_t>& indices) const {
  // Same seed and fold as HashOnFields in mr/tuple.cc.
  uint64_t h = 0x100001b3ULL;
  uint32_t phys = sel_[row];
  for (size_t i : indices) h = HashCombine(h, ValueAt(i, phys).Hash());
  return h;
}

int RowBatch::Compare(size_t a, size_t b,
                      const std::vector<size_t>& indices) const {
  uint32_t pa = sel_[a];
  uint32_t pb = sel_[b];
  for (size_t i : indices) {
    const Value& va = ValueAt(i, pa);
    const Value& vb = ValueAt(i, pb);
    if (va < vb) return -1;
    if (vb < va) return 1;
  }
  return 0;
}

Row RowBatch::MaterializeRow(size_t row) const {
  std::vector<Value> values;
  values.reserve(cols_.size());
  uint32_t phys = sel_[row];
  for (size_t c = 0; c < cols_.size(); ++c) {
    values.push_back(ValueAt(c, phys));
  }
  return Row(std::move(values));
}

std::vector<Row> RowBatch::ToRows() const {
  std::vector<Row> rows;
  rows.reserve(sel_.size());
  for (size_t row = 0; row < sel_.size(); ++row) {
    rows.push_back(MaterializeRow(row));
  }
  return rows;
}

}  // namespace stubby

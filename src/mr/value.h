// Value: a single typed field of a record flowing through the simulated
// MapReduce system. Kept deliberately small (int64 / double / string) — the
// workloads in the paper only need these.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

namespace stubby {

/// Dynamically typed field value.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  Value(int64_t v) : v_(v) {}            // NOLINT(runtime/explicit)
  Value(int v) : v_(int64_t{v}) {}       // NOLINT(runtime/explicit)
  Value(double v) : v_(v) {}             // NOLINT(runtime/explicit)
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT(runtime/explicit)

  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  /// Integer content; must hold an int.
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  /// Double content; coerces ints.
  double AsDouble() const {
    if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
    return std::get<double>(v_);
  }
  /// String content; must hold a string.
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Serialized size in bytes under the simulator's wire format. Drives all
  /// byte accounting in the execution engine and cost model.
  uint64_t SerializedSize() const;

  /// Total order across types: ints/doubles compare numerically among
  /// themselves, strings lexicographically; numeric < string.
  bool operator<(const Value& other) const;
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<=(const Value& other) const { return !(other < *this); }

  /// Stable content hash.
  uint64_t Hash() const;

  /// Human-readable rendering for debugging and golden tests.
  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string> v_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace stubby

#include "optimizer/configuration.h"

#include <algorithm>

namespace stubby {

Status ApplyConfiguration(Plan* plan, const std::string& job_id,
                          const JobConfig& config) {
  STUBBY_ASSIGN_OR_RETURN(JobVertex * job, plan->GetMutableJob(job_id));
  JobConfig c = config;
  if (job->conditions.num_reduce_fixed) {
    c.num_reduce_tasks = *job->conditions.num_reduce_fixed;
  }
  bool has_combiner = std::any_of(
      job->branches.begin(), job->branches.end(),
      [](const Branch& b) { return b.combiner != nullptr; });
  if (!has_combiner) c.use_combiner = false;
  // Output compression flows into the produced datasets' planned layouts.
  if (c.compress_output != job->config.compress_output) {
    for (const Branch& b : job->branches) {
      auto dv = plan->GetMutableDataset(b.output_dataset);
      if (dv.ok()) {
        (*dv)->layout.compressed = c.compress_output;
        if ((*dv)->annotation.layout) {
          (*dv)->annotation.layout->compressed = c.compress_output;
        }
      }
    }
  }
  job->config = c;
  return Status::OK();
}

ConfigSpace SpaceForJob(const JobVertex& job, const ClusterSpec& cluster) {
  bool has_combiner = std::any_of(
      job.branches.begin(), job.branches.end(),
      [](const Branch& b) { return b.combiner != nullptr; });
  ConfigSpace all =
      ConfigSpace::Default(cluster.total_reduce_slots(), has_combiner);
  bool reduce_pinned =
      job.map_only() || job.conditions.num_reduce_fixed.has_value();
  for (const Branch& b : job.branches) {
    // Explicit range splits determine the partition count; sampler-resolved
    // splits track the config, so those stay tunable.
    if (b.partition.FixesNumPartitions()) reduce_pinned = true;
  }
  if (!reduce_pinned) return all;
  std::vector<ConfigDimension> dims;
  for (const ConfigDimension& d : all.dims()) {
    if (d.name != "num_reduce_tasks") dims.push_back(d);
  }
  return ConfigSpace::FromDims(std::move(dims));
}

JobConfig RuleOfThumbConfig(const JobVertex& job, const ClusterSpec& cluster,
                            const Plan* plan) {
  JobConfig c;
  // "Set the number of reduce tasks to slightly less than one full wave",
  // scaled down for small inputs (Pig's ~1 reducer/GB heuristic).
  int wave = std::max(1, static_cast<int>(cluster.total_reduce_slots() * 0.95));
  c.num_reduce_tasks = wave;
  if (plan != nullptr) {
    uint64_t bytes = 0;
    bool all_known = true;
    for (const auto& id : job.InputDatasets()) {
      auto dv = plan->GetDataset(id);
      if (dv.ok() && (*dv)->annotation.bytes) {
        bytes += *(*dv)->annotation.bytes;
      } else {
        all_known = false;
      }
    }
    if (all_known && bytes > 0) {
      int per_gb = static_cast<int>(bytes / (1ull << 30)) + 1;
      c.num_reduce_tasks = std::clamp(per_gb, 1, wave);
    }
  }
  c.io_sort_mb = 128.0;
  c.io_sort_factor = 10;
  c.split_mb = 64.0;
  c.compress_map_output = false;
  c.compress_output = false;
  // "Use a combiner whenever the job provides one."
  c.use_combiner = std::any_of(
      job.branches.begin(), job.branches.end(),
      [](const Branch& b) { return b.combiner != nullptr; });
  if (job.conditions.num_reduce_fixed) {
    c.num_reduce_tasks = *job.conditions.num_reduce_fixed;
  }
  return c;
}

}  // namespace stubby

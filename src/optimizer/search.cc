#include "optimizer/search.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <set>

#include "common/logging.h"
#include "common/strings.h"
#include "common/threading.h"
#include "cost/cost_cache.h"
#include "optimizer/configuration.h"
#include "reuse/probe_cache.h"
#include "reuse/rewriter.h"

namespace stubby {

namespace {

/// Enumeration node: a subplan reached by a sequence of structural
/// transformations.
struct EnumState {
  Plan plan;
  std::map<std::string, std::string> renames;
  std::vector<std::string> applied;
  int depth = 0;
};

/// Maps the unit's original job ids through the renames accumulated so far.
std::vector<std::string> MappedUnitJobs(
    const std::vector<std::string>& original,
    const std::map<std::string, std::string>& renames) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const auto& id : original) {
    auto it = renames.find(id);
    const std::string& mapped = it == renames.end() ? id : it->second;
    if (seen.insert(mapped).second) out.push_back(mapped);
  }
  return out;
}

/// Composes `next` renames on top of `base`.
std::map<std::string, std::string> ComposeRenames(
    const std::map<std::string, std::string>& base,
    const std::map<std::string, std::string>& next) {
  std::map<std::string, std::string> out = base;
  for (auto& [old_id, new_id] : out) {
    auto it = next.find(new_id);
    if (it != next.end()) new_id = it->second;
  }
  for (const auto& [old_id, new_id] : next) {
    if (!out.count(old_id)) out[old_id] = new_id;
  }
  return out;
}

}  // namespace

Result<std::vector<SubplanCandidate>> UnitOptimizer::EnumerateSubplans(
    const Plan& plan, const OptimizationUnit& unit,
    ReuseStats* search_totals) const {
  // Exhaustive BFS over sequences of structural transformations, with
  // signature-based de-duplication.
  std::vector<EnumState> subplans;
  std::set<std::string> seen;
  std::deque<EnumState> queue;
  queue.push_back(EnumState{plan, {}, {}, 0});
  seen.insert(PlanSignature(plan));

  const std::vector<std::string> original_jobs = unit.AllJobs();
  while (!queue.empty() &&
         static_cast<int>(subplans.size()) < options_.max_subplans) {
    EnumState state = std::move(queue.front());
    queue.pop_front();
    std::vector<std::string> scope =
        MappedUnitJobs(original_jobs, state.renames);
    if (state.depth < options_.max_depth) {
      for (const auto& t : transforms_) {
        for (Application& app : t->FindApplications(state.plan, scope)) {
          auto next = app.apply(state.plan);
          if (!next.ok()) continue;  // postconditions not establishable
          std::string sig = PlanSignature(*next);
          if (!seen.insert(sig).second) continue;
          EnumState ns;
          ns.plan = std::move(*next);
          ns.renames = ComposeRenames(state.renames, app.renames);
          ns.applied = state.applied;
          ns.applied.push_back(app.description);
          ns.depth = state.depth + 1;
          queue.push_back(std::move(ns));
        }
      }
    }
    subplans.push_back(std::move(state));
  }
  // Drain any remaining queued states as subplans (cap respected).
  while (!queue.empty() &&
         static_cast<int>(subplans.size()) < options_.max_subplans) {
    subplans.push_back(std::move(queue.front()));
    queue.pop_front();
  }

  // Cost each subplan after an RRS pass over its unit-job configurations.
  // Candidates are independent tasks: each costs through a private engine
  // whose cache is an overlay over the shared store (frozen for the whole
  // batch) and whose instrumentation is a private delta. Overlays and
  // deltas merge serially in candidate order afterwards. The protocol is
  // the same at every thread count, so costs, chosen plans, and counters
  // never depend on how many threads ran the tasks.
  const size_t n = subplans.size();
  std::vector<std::vector<std::string>> scopes(n);
  for (size_t i = 0; i < n; ++i) {
    scopes[i] = MappedUnitJobs(original_jobs, subplans[i].renames);
  }
  CostStore* shared_cache = whatif_->cache();
  CostInstrumentation* shared_stats = whatif_->instrumentation();
  std::vector<std::unique_ptr<CostCacheOverlay>> overlays(n);
  std::vector<CostInstrumentation> deltas(n);
  std::vector<Result<ConfiguredPlan>> configured(
      n, Result<ConfiguredPlan>(Status::Internal("candidate not costed")));
  // Reuse-aware pricing happens inside each candidate's task, against the
  // candidate's *configured* plan: store entries are keyed under the job
  // configurations that actually executed, so probing before the RRS pass
  // would systematically miss tuned jobs. Probes are read-only
  // (PlanForScope never touches hit counts, recency, or pins), and a
  // rewritten form is re-priced through the same per-candidate overlay
  // engine, so the whole path follows the existing merge-in-order
  // determinism protocol unchanged.
  struct ReuseOutcome {
    ReuseStats probe;  ///< this candidate's probe/priced counters
    ReuseStats hits;   ///< the rewrite's hit counters (when it won)
    std::map<std::string, CostKey> materialized_lineage;
    bool rewritten = false;
  };
  std::vector<ReuseOutcome> reuse_outcomes(n);
  ReuseRewriter rewriter(reuse_.store, reuse_.dfs);
  // Signature memo: pre-seed the shared (frozen-for-the-batch) memo with
  // the unit base plan's lineage before the candidate tasks run. Candidates
  // only perturb unit jobs, and tasks of one batch never observe each
  // other's overlay inserts — so cross-candidate collapse of the non-unit
  // jobs' JobReuseKey digests requires exactly this serial warm-up. The
  // pre-seed is restricted to the upstream closure of the unit scope (the
  // only keys a scoped probe can observe) and its hit/miss counters merge
  // into `search_totals` first, matching serial execution order.
  ProbeStore* probe_cache = reuse_.active() ? reuse_.probe_cache : nullptr;
  ReuseStats preseed;
  if (probe_cache != nullptr) {
    std::set<std::string> base_scope(original_jobs.begin(),
                                     original_jobs.end());
    auto closure = UpstreamJobClosure(plan, base_scope);
    if (closure.ok()) {
      LineageMemo accel;
      accel.memo = probe_cache;
      accel.restrict_to = &*closure;
      if (ComputeLineage(plan, *reuse_.dfs, reuse_.seeds, &accel).ok()) {
        preseed.probe_cache_hits = accel.hits;
        preseed.probe_cache_misses = accel.misses;
        preseed.signature_keys_computed = accel.computed;
      }
    }
  }
  std::vector<std::unique_ptr<ProbeCacheOverlay>> probe_overlays(n);
  std::vector<std::map<std::string, CostDigest>> content_digests(n);
  RunTasks(pool_, n, [&](size_t i) {
    WhatIfEngine engine(whatif_->model().cluster());
    if (shared_cache != nullptr) {
      overlays[i] = std::make_unique<CostCacheOverlay>(shared_cache);
      engine.set_cache(overlays[i].get());
    }
    if (shared_stats != nullptr) engine.set_instrumentation(&deltas[i]);
    configured[i] = OptimizeConfigurations(
        &engine, subplans[i].plan, scopes[i],
        probe_cache != nullptr ? &content_digests[i] : nullptr);
    if (!configured[i].ok() || !reuse_.active()) return;

    RewriteProbe rewrite_probe;
    if (probe_cache != nullptr) {
      probe_overlays[i] = std::make_unique<ProbeCacheOverlay>(probe_cache);
      rewrite_probe.memo = probe_overlays[i].get();
      rewrite_probe.content_digests = &content_digests[i];
    }
    auto probe = rewriter.PlanForScope(configured[i]->plan, &scopes[i],
                                       reuse_.seeds, &rewrite_probe);
    if (!probe.ok()) {
      configured[i] = probe.status();
      return;
    }
    reuse_outcomes[i].probe.search_probes += probe->stats.lookups;
    reuse_outcomes[i].probe.probe_cache_hits += probe->stats.probe_cache_hits;
    reuse_outcomes[i].probe.probe_cache_misses +=
        probe->stats.probe_cache_misses;
    reuse_outcomes[i].probe.signature_keys_computed +=
        probe->stats.signature_keys_computed;
    if (!probe->changed) return;
    ++reuse_outcomes[i].probe.search_priced;
    if (shared_stats != nullptr) ++deltas[i].reuse_priced_candidates;
    // Re-tune the surviving jobs on the rewritten landscape (cheap: an
    // all-elided scope has no configuration space left) and keep the
    // rewritten form only when it strictly beats recomputing.
    auto repriced = OptimizeConfigurations(&engine, probe->plan, scopes[i]);
    if (!repriced.ok()) {
      configured[i] = repriced.status();
      return;
    }
    // Under the job-count fallback model both forms of a prefix rewrite
    // price identically (same number of jobs), so a tie there goes to the
    // rewrite: scanning stored bytes can't be worse than recomputing them,
    // the fallback model just can't see it. Detailed-cost ties keep the
    // unrewritten form (closer to the reuse-blind bits).
    const bool fallback_tie = repriced->fallback && configured[i]->fallback &&
                              repriced->cost == configured[i]->cost;
    if (repriced->cost < configured[i]->cost || fallback_tie) {
      reuse_outcomes[i].hits = probe->stats;
      reuse_outcomes[i].materialized_lineage =
          std::move(probe->materialized_lineage);
      reuse_outcomes[i].rewritten = true;
      configured[i] = std::move(repriced);
    }
  });
  Status first_error = Status::OK();
  if (search_totals != nullptr) search_totals->Add(preseed);
  for (size_t i = 0; i < n; ++i) {
    if (shared_cache != nullptr) overlays[i]->MergeInto(shared_cache);
    if (shared_stats != nullptr) shared_stats->Add(deltas[i]);
    if (probe_cache != nullptr && probe_overlays[i] != nullptr) {
      probe_overlays[i]->MergeInto(probe_cache);
    }
    if (search_totals != nullptr) search_totals->Add(reuse_outcomes[i].probe);
    if (first_error.ok() && !configured[i].ok()) {
      first_error = configured[i].status();
    }
  }
  if (!first_error.ok()) return first_error;

  std::vector<SubplanCandidate> out;
  for (size_t i = 0; i < n; ++i) {
    SubplanCandidate cand;
    cand.plan = std::move(configured[i]->plan);
    cand.cost = configured[i]->cost;
    cand.fallback = configured[i]->fallback;
    cand.applied = std::move(subplans[i].applied);
    cand.renames = std::move(subplans[i].renames);
    if (reuse_outcomes[i].rewritten) {
      cand.reuse_rewritten = true;
      cand.reuse = reuse_outcomes[i].hits;
      cand.materialized_lineage =
          std::move(reuse_outcomes[i].materialized_lineage);
      cand.applied.push_back(StrFormat(
          "reuse: %llu whole-job + %llu map-prefix hit(s) priced from store",
          (unsigned long long)cand.reuse.whole_job_hits,
          (unsigned long long)cand.reuse.prefix_hits));
    }
    out.push_back(std::move(cand));
  }
  return out;
}

Result<UnitOptimizer::ConfiguredPlan> UnitOptimizer::OptimizeConfigurations(
    const WhatIfEngine* engine, const Plan& plan,
    const std::vector<std::string>& unit_jobs,
    std::map<std::string, CostDigest>* content_digests) const {
  CostEstimate base = engine->Cost(plan);
  if (!options_.enable_configuration || base.fallback) {
    // Without profiles the configuration subspace cannot be costed; the
    // search degrades gracefully to the job-count model (Section 5).
    if (content_digests != nullptr) *content_digests = JobContentDigests(plan);
    return ConfiguredPlan{plan, base.cost, base.fallback};
  }

  // Joint configuration space of the unit's (surviving) jobs.
  struct JobSpace {
    std::string id;
    ConfigSpace space;
    size_t offset;
  };
  std::vector<JobSpace> spaces;
  size_t dims = 0;
  for (const auto& jid : unit_jobs) {
    auto jr = plan.GetJob(jid);
    if (!jr.ok()) continue;
    ConfigSpace space = SpaceForJob(**jr, plan.cluster());
    if (space.size() == 0) continue;
    spaces.push_back(JobSpace{jid, std::move(space), dims});
    dims += spaces.back().space.size();
  }
  if (dims == 0) {
    if (content_digests != nullptr) *content_digests = JobContentDigests(plan);
    return ConfiguredPlan{plan, base.cost, base.fallback};
  }

  auto apply_point_to = [&](Plan* candidate,
                            const std::vector<double>& point) -> Status {
    for (const JobSpace& js : spaces) {
      std::vector<double> slice(
          point.begin() + static_cast<long>(js.offset),
          point.begin() + static_cast<long>(js.offset + js.space.size()));
      STUBBY_ASSIGN_OR_RETURN(const JobVertex* job, candidate->GetJob(js.id));
      JobConfig config = js.space.PointToConfig(slice, job->config);
      STUBBY_RETURN_NOT_OK(ApplyConfiguration(candidate, js.id, config));
    }
    return Status::OK();
  };

  // With a cache attached, only the unit jobs' digests change between
  // points, and within each such job only the configuration suffix does:
  // digest the base subplan once, precompute the unit jobs' structural
  // prefixes, and refresh just the configuration mix per point.
  const bool incremental_digests = engine->cache() != nullptr;
  std::map<std::string, CostDigest> digests;
  std::vector<CostDigest> structure;
  if (incremental_digests) {
    digests = JobContentDigests(plan);
    structure.reserve(spaces.size());
    for (const JobSpace& js : spaces) {
      auto jr = plan.GetJob(js.id);
      structure.push_back(jr.ok() ? JobStructureDigest(**jr) : CostDigest{});
    }
  }

  // Batch evaluator for the RRS rounds. Points are split into fixed-size
  // blocks — the block size is a constant, never derived from the thread
  // count, because block boundaries decide which memo entries each point
  // can see and therefore shape the instrumentation counters. Each block
  // is an independent task with its own scratch plan, digest map, overlay
  // over the engine's store, and instrumentation delta; blocks merge
  // serially in block order. RRS points differ only in the unit jobs'
  // configurations, and ApplyConfiguration overwrites those
  // deterministically (uncontrolled fields pass through PointToConfig
  // unchanged), so a per-block scratch copy evaluates each point exactly
  // as a per-point fresh copy would.
  constexpr size_t kBlock = 4;
  CostStore* parent_cache = engine->cache();
  CostInstrumentation* parent_stats = engine->instrumentation();
  auto batch_eval =
      [&](const std::vector<std::vector<double>>& points) -> std::vector<double> {
    const size_t blocks = (points.size() + kBlock - 1) / kBlock;
    std::vector<std::unique_ptr<CostCacheOverlay>> overlays(blocks);
    std::vector<CostInstrumentation> deltas(blocks);
    std::vector<double> values(points.size());
    RunTasks(pool_, blocks, [&](size_t b) {
      WhatIfEngine block_engine(engine->model().cluster());
      if (parent_cache != nullptr) {
        overlays[b] = std::make_unique<CostCacheOverlay>(parent_cache);
        block_engine.set_cache(overlays[b].get());
      }
      if (parent_stats != nullptr) {
        block_engine.set_instrumentation(&deltas[b]);
      }
      Plan scratch = plan;
      std::map<std::string, CostDigest> block_digests = digests;
      const size_t begin = b * kBlock;
      const size_t end = std::min(points.size(), begin + kBlock);
      for (size_t p = begin; p < end; ++p) {
        if (parent_stats != nullptr) ++deltas[b].rrs_evaluations;
        if (!apply_point_to(&scratch, points[p]).ok()) {
          values[p] = std::numeric_limits<double>::infinity();
          continue;
        }
        if (!incremental_digests) {
          values[p] = block_engine.Cost(scratch).cost;
          continue;
        }
        for (size_t i = 0; i < spaces.size(); ++i) {
          auto jr = scratch.GetJob(spaces[i].id);
          if (!jr.ok()) continue;
          CostDigest jd = structure[i];
          MixJobConfiguration(&jd, **jr);
          block_digests[spaces[i].id] = jd;
        }
        values[p] = block_engine.CostWithDigests(scratch, block_digests).cost;
      }
    });
    for (size_t b = 0; b < blocks; ++b) {
      if (parent_cache != nullptr) overlays[b]->MergeInto(parent_cache);
      if (parent_stats != nullptr) parent_stats->Add(deltas[b]);
    }
    return values;
  };

  // Seeds: the current configurations and the rule-of-thumb settings.
  std::vector<double> current_seed;
  std::vector<double> thumb_seed;
  for (const JobSpace& js : spaces) {
    auto jr = plan.GetJob(js.id);
    std::vector<double> cur = js.space.ConfigToPoint((*jr)->config);
    std::vector<double> thumb =
        js.space.ConfigToPoint(RuleOfThumbConfig(**jr, plan.cluster(), &plan));
    current_seed.insert(current_seed.end(), cur.begin(), cur.end());
    thumb_seed.insert(thumb_seed.end(), thumb.begin(), thumb.end());
  }

  RecursiveRandomSearch rrs(options_.rrs, options_.seed);
  auto [best_point, best_value] =
      rrs.MinimizeBatches(dims, batch_eval, {current_seed, thumb_seed});
  if (!std::isfinite(best_value) || best_value >= base.cost) {
    if (content_digests != nullptr) {
      *content_digests = incremental_digests ? std::move(digests)
                                             : JobContentDigests(plan);
    }
    return ConfiguredPlan{plan, base.cost, base.fallback};
  }
  Plan best_plan = plan;
  STUBBY_RETURN_NOT_OK(apply_point_to(&best_plan, best_point));
  if (content_digests != nullptr) {
    // The winning point only reconfigured the unit jobs: refresh those
    // entries' configuration suffix (exactly what the block evaluator does
    // per point) and hand the rest of the base-plan digests through.
    if (!incremental_digests) digests = JobContentDigests(plan);
    for (size_t i = 0; i < spaces.size(); ++i) {
      auto jr = best_plan.GetJob(spaces[i].id);
      if (!jr.ok()) continue;
      CostDigest jd = incremental_digests ? structure[i]
                                          : JobStructureDigest(**jr);
      MixJobConfiguration(&jd, **jr);
      digests[spaces[i].id] = jd;
    }
    *content_digests = std::move(digests);
  }
  // base was costable (no fallback), and configuration changes never remove
  // the annotations that made it so.
  return ConfiguredPlan{std::move(best_plan), best_value, false};
}

Result<UnitResult> UnitOptimizer::Optimize(const Plan& plan,
                                           const OptimizationUnit& unit) const {
  ReuseStats search_totals;
  STUBBY_ASSIGN_OR_RETURN(std::vector<SubplanCandidate> candidates,
                          EnumerateSubplans(plan, unit, &search_totals));
  if (candidates.empty()) {
    return Status::Internal("unit enumeration produced no subplans");
  }
  size_t best = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (candidates[i].cost < candidates[best].cost) best = i;
  }
  UnitResult result;
  result.plan = std::move(candidates[best].plan);
  result.cost = candidates[best].cost;
  result.fallback = candidates[best].fallback;
  result.renames = std::move(candidates[best].renames);
  result.applied = std::move(candidates[best].applied);
  result.subplans_enumerated = static_cast<int>(candidates.size());
  result.reuse = search_totals;
  if (candidates[best].reuse_rewritten) {
    result.reuse_won = true;
    ++result.reuse.search_won;
    result.reuse.whole_job_hits += candidates[best].reuse.whole_job_hits;
    result.reuse.prefix_hits += candidates[best].reuse.prefix_hits;
    result.reuse.jobs_elided += candidates[best].reuse.jobs_elided;
    result.reuse.bytes_saved += candidates[best].reuse.bytes_saved;
    result.materialized_lineage =
        std::move(candidates[best].materialized_lineage);
  }
  return result;
}

}  // namespace stubby

// Configuration transformation (Section 3.5): changes a job's configuration
// subject to the conditions accumulated on it (fixed reduce-task counts,
// range-partitioning split counts). Unlike the packing transformations it
// does not change the workflow graph; the search explores it through RRS
// over the per-job configuration spaces.

#pragma once

#include "common/result.h"
#include "mr/cluster.h"
#include "mr/job_config.h"
#include "optimizer/transform.h"

namespace stubby {

/// Applies `config` to the job, respecting its conditions (a fixed
/// reduce-task count wins over the configured one).
Status ApplyConfiguration(Plan* plan, const std::string& job_id,
                          const JobConfig& config);

/// The RRS search space for one job: excludes dimensions pinned by
/// conditions (reduce count when fixed or range-determined) and the
/// combiner toggle when no branch has a combine function.
ConfigSpace SpaceForJob(const JobVertex& job, const ClusterSpec& cluster);

/// Rule-of-thumb configuration in the spirit of the Cloudera tuning tips
/// the paper's Baseline uses [3] and Pig's own heuristics: roughly one
/// reduce task per GB of (annotated) input, capped slightly below one
/// cluster wave; a large sort buffer; compression off; combiner on when
/// available. `plan` supplies dataset size annotations (pass the job's
/// plan; unknown sizes fall back to the one-wave setting).
JobConfig RuleOfThumbConfig(const JobVertex& job, const ClusterSpec& cluster,
                            const Plan* plan = nullptr);

}  // namespace stubby

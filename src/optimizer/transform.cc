#include "optimizer/transform.h"

#include <sstream>

#include "common/strings.h"

namespace stubby {

namespace {

void AppendStageSignature(std::ostringstream& os, const Stage& s) {
  os << (s.kind == Stage::Kind::kMap ? "m:" : "r:") << s.name();
  if (s.kind == Stage::Kind::kReduce) {
    os << "(" << Join(s.group_fields, ",") << ")";
  }
  if (!s.tee_dataset.empty()) os << ">" << s.tee_dataset;
  os << ";";
}

}  // namespace

std::string PlanSignature(const Plan& plan) {
  std::ostringstream os;
  for (const auto& [jid, job] : plan.jobs()) {
    os << "J[" << jid << "]";
    for (const Branch& b : job.branches) {
      os << "{" << b.tag << ":";
      for (const BranchInput& in : b.inputs) {
        os << "<" << in.dataset_id << (in.aligned ? "!a" : "")
           << "#" << in.prune_partitions.size() << ":";
        for (const Stage& s : in.map_stages) AppendStageSignature(os, s);
        os << ">";
      }
      if (b.merge_mode()) {
        os << "|merge(" << Join(b.merge_sort_fields, ",") << "):";
        for (const Stage& s : b.merged_map_stages) AppendStageSignature(os, s);
      }
      if (!b.map_only()) {
        os << "|" << b.partition.ToString() << "|";
        for (const Stage& s : b.reduce_stages) AppendStageSignature(os, s);
      }
      os << "->" << b.output_dataset << "}";
    }
  }
  return os.str();
}

void AttachTee(std::vector<Stage>* stages, const Schema& schema_at_end,
               const std::string& dataset) {
  if (!stages->empty() && stages->back().tee_dataset.empty()) {
    stages->back().tee_dataset = dataset;
    return;
  }
  StageStats identity_stats;
  identity_stats.record_selectivity = 1.0;
  identity_stats.byte_selectivity = 1.0;
  identity_stats.cpu_per_record = 0.1;
  Stage tee = Stage::Map(MakeIdentityMap(schema_at_end), identity_stats);
  tee.tee_dataset = dataset;
  stages->push_back(std::move(tee));
}

}  // namespace stubby

#include "optimizer/reoptimize.h"

#include <vector>

#include "profiler/profiler.h"

namespace stubby {

Result<Plan> BuildSuffixPlan(const Plan& plan,
                             const std::set<std::string>& executed,
                             const Dfs& dfs) {
  Plan suffix = plan;
  for (const std::string& jid : executed) suffix.RemoveJob(jid);

  std::vector<std::string> drop;
  std::vector<std::string> promote;
  for (const auto& [id, v] : suffix.datasets()) {
    if (!suffix.ProducerOf(id).empty()) continue;  // still computed here
    const bool consumed = !suffix.ConsumersOf(id).empty();
    if (!consumed && !v.is_base_input) {
      // Executed intermediates and already-written terminal outputs: done.
      drop.push_back(id);
      continue;
    }
    if (consumed) promote.push_back(id);
  }
  for (const std::string& id : drop) suffix.RemoveDataset(id);

  for (const std::string& id : promote) {
    STUBBY_ASSIGN_OR_RETURN(DatasetPtr ds, dfs.Get(id));
    STUBBY_ASSIGN_OR_RETURN(DatasetVertex * v, suffix.GetMutableDataset(id));
    v->is_base_input = true;
    v->materialized_from.clear();
    v->layout = ds->layout();
    v->annotation.schema = ds->schema();
    v->annotation.layout = ds->layout();
    v->annotation.num_records = ds->logical_rows();
    v->annotation.bytes = ds->logical_bytes();
    v->annotation.num_partitions = static_cast<int>(ds->num_partitions());
  }

  STUBBY_RETURN_NOT_OK(suffix.Validate());
  return suffix;
}

Result<OptimizeReport> ReoptimizeSuffix(const Plan& suffix, const Dfs& dfs,
                                        const StubbyOptions& options,
                                        ThreadPool* pool) {
  // Corrected profiles: instrumented execution over the actual data. The
  // scratch DFS copy shares immutable dataset payloads, so this costs one
  // pass over the suffix, not a data copy.
  Plan profiled = suffix;
  Dfs scratch = dfs;
  Profiler profiler(suffix.cluster());
  STUBBY_RETURN_NOT_OK(profiler.ProfilePlan(&profiled, &scratch));

  StubbyOptions opts = options;
  opts.reuse_store = nullptr;
  opts.reuse_dfs = nullptr;
  opts.reoptimize = false;
  opts.pool = pool;
  return StubbyOptimizer(opts).Optimize(profiled);
}

}  // namespace stubby

// Optimization units (Section 4.1): Stubby divides the plan into
// (possibly overlapping) subplans — a set of concurrently-runnable producer
// jobs plus their consumer jobs — generated dynamically while traversing
// the workflow graph in topological sort order. Decisions inside a unit
// affect each other; decisions across units are treated as independent.

#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "workflow/plan.h"

namespace stubby {

/// One optimization unit U(i).
struct OptimizationUnit {
  /// Concurrently-runnable jobs at the traversal frontier.
  std::vector<std::string> producers;
  /// Jobs consuming the producers' outputs.
  std::vector<std::string> consumers;

  /// producers ∪ consumers (transformation scope).
  std::vector<std::string> AllJobs() const;

  std::string ToString() const;
};

/// Generates the next unit: producers are the jobs not yet processed whose
/// upstream jobs have all been processed; consumers are their downstream
/// jobs. Returns nullopt when the traversal has covered the graph.
///
/// The traversal tolerates jobs vanishing between units: the reuse-aware
/// search can elide a unit's jobs into materialized scans, after which a
/// previously-seen consumer simply never surfaces as a producer (and a
/// processed id with no surviving job is ignored).
std::optional<OptimizationUnit> NextUnit(
    const Plan& plan, const std::set<std::string>& processed);

}  // namespace stubby

#include "optimizer/stubby.h"

#include <chrono>
#include <set>

#include "common/logging.h"
#include "optimizer/horizontal.h"
#include "optimizer/partition_fn.h"
#include "optimizer/vertical.h"

namespace stubby {

Result<Plan> StubbyOptimizer::RunPhase(
    Plan plan, const std::vector<std::shared_ptr<Transformation>>& group,
    const WhatIfEngine& whatif, OptimizeReport* report) const {
  UnitSearchOptions unit_options = options_.unit;
  unit_options.enable_configuration = options_.enable_configuration;
  UnitOptimizer optimizer(group, &whatif, unit_options);

  std::set<std::string> processed;
  const size_t max_iterations = plan.num_jobs() * 8 + 8;
  size_t iterations = 0;
  while (auto unit = NextUnit(plan, processed)) {
    if (++iterations > max_iterations) {
      return Status::Internal("unit traversal did not converge");
    }
    STUBBY_ASSIGN_OR_RETURN(UnitResult result,
                            optimizer.Optimize(plan, *unit));
    plan = std::move(result.plan);
    report->units_processed++;
    report->subplans_enumerated += result.subplans_enumerated;
    for (const auto& d : result.applied) report->applied.push_back(d);
    // Producers whose id survived are done; producers packed into a new
    // job serve as producers again in a later unit (Figure 9's J4').
    for (const auto& p : unit->producers) {
      if (!result.renames.count(p)) processed.insert(p);
    }
  }
  return plan;
}

Result<OptimizeReport> StubbyOptimizer::Optimize(const Plan& plan) const {
  auto t0 = std::chrono::steady_clock::now();
  STUBBY_RETURN_NOT_OK(plan.Validate());

  WhatIfEngine whatif(plan.cluster());
  OptimizeReport report;

  std::vector<std::shared_ptr<Transformation>> vertical_group;
  if (options_.enable_intra_vertical) {
    vertical_group.push_back(std::make_shared<IntraJobVerticalPacking>());
  }
  if (options_.enable_inter_vertical) {
    vertical_group.push_back(std::make_shared<InterJobVerticalPacking>());
  }
  if (options_.enable_partition_function) {
    vertical_group.push_back(std::make_shared<PartitionFunctionTransform>());
  }

  std::vector<std::shared_ptr<Transformation>> horizontal_group;
  if (options_.enable_horizontal) {
    horizontal_group.push_back(
        std::make_shared<HorizontalPacking>(options_.extended_horizontal));
  }
  if (options_.enable_partition_function) {
    horizontal_group.push_back(
        std::make_shared<PartitionFunctionTransform>());
  }

  Plan current = plan;
  std::vector<std::vector<std::shared_ptr<Transformation>>> phases;
  if (options_.flip_phase_order) {
    phases = {horizontal_group, vertical_group};
  } else {
    phases = {vertical_group, horizontal_group};
  }
  for (const auto& group : phases) {
    bool phase_useful =
        !group.empty() || options_.enable_configuration;
    if (!phase_useful) continue;
    STUBBY_ASSIGN_OR_RETURN(current,
                            RunPhase(std::move(current), group, whatif,
                                     &report));
  }

  CostEstimate final_cost = whatif.Cost(current);
  report.plan = std::move(current);
  report.estimated_cost = final_cost.cost;
  report.fallback = final_cost.fallback;
  report.optimization_time_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

}  // namespace stubby

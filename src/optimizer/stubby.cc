#include "optimizer/stubby.h"

#include <chrono>
#include <optional>
#include <set>

#include "common/logging.h"
#include "common/threading.h"
#include "optimizer/horizontal.h"
#include "optimizer/partition_fn.h"
#include "optimizer/vertical.h"
#include "reuse/rewriter.h"

namespace stubby {

CostKey ReuseSaltFromOptions(const StubbyOptions& options) {
  CostDigest d;
  d.Mix(uint64_t{0x5265557353616c74ull});  // "ReUsSalt"
  d.Mix(options.enable_intra_vertical);
  d.Mix(options.enable_inter_vertical);
  d.Mix(options.enable_horizontal);
  d.Mix(options.extended_horizontal);
  d.Mix(options.enable_partition_function);
  d.Mix(options.enable_configuration);
  d.Mix(options.flip_phase_order);
  d.Mix(static_cast<uint64_t>(options.unit.max_subplans));
  d.Mix(static_cast<uint64_t>(options.unit.max_depth));
  d.Mix(options.unit.enable_configuration);
  d.Mix(options.unit.seed);
  d.Mix(static_cast<uint64_t>(options.unit.rrs.budget));
  d.Mix(static_cast<uint64_t>(options.unit.rrs.explore_samples));
  d.Mix(static_cast<uint64_t>(options.unit.rrs.exploit_samples));
  d.Mix(options.unit.rrs.init_radius);
  d.Mix(options.unit.rrs.shrink);
  d.Mix(options.unit.rrs.min_radius);
  return d.value();
}

Result<Plan> StubbyOptimizer::RunPhase(
    Plan plan, const std::vector<std::shared_ptr<Transformation>>& group,
    const WhatIfEngine& whatif, ThreadPool* pool,
    OptimizeReport* report) const {
  UnitSearchOptions unit_options = options_.unit;
  unit_options.enable_configuration = options_.enable_configuration;
  UnitOptimizer optimizer(group, &whatif, unit_options, pool);

  std::set<std::string> processed;
  const size_t max_iterations = plan.num_jobs() * 8 + 8;
  size_t iterations = 0;
  while (auto unit = NextUnit(plan, processed)) {
    if (++iterations > max_iterations) {
      return Status::Internal("unit traversal did not converge");
    }
    STUBBY_ASSIGN_OR_RETURN(UnitResult result,
                            optimizer.Optimize(plan, *unit));
    plan = std::move(result.plan);
    report->units_processed++;
    report->subplans_enumerated += result.subplans_enumerated;
    for (const auto& d : result.applied) report->applied.push_back(d);
    // Producers whose id survived are done; producers packed into a new
    // job serve as producers again in a later unit (Figure 9's J4').
    for (const auto& p : unit->producers) {
      if (!result.renames.count(p)) processed.insert(p);
    }
  }
  return plan;
}

Result<OptimizeReport> StubbyOptimizer::Optimize(const Plan& plan) const {
  auto t0 = std::chrono::steady_clock::now();
  STUBBY_RETURN_NOT_OK(plan.Validate());

  WhatIfEngine whatif(plan.cluster());
  OptimizeReport report;
  whatif.set_instrumentation(&report.costing);

  const bool reuse_enabled =
      options_.reuse_store != nullptr && options_.reuse_dfs != nullptr;

  // Tier 1: if every terminal output of the workflow is stored under this
  // option set, skip optimization and execution planning entirely.
  if (reuse_enabled && options_.reuse_whole_workflow) {
    ReuseRewriter rewriter(options_.reuse_store, options_.reuse_dfs);
    STUBBY_ASSIGN_OR_RETURN(
        ReuseRewriteResult elided,
        rewriter.ElideWholeWorkflow(plan, ReuseSaltFromOptions(options_)));
    report.reuse.Add(elided.stats);
    if (elided.changed) {
      CostEstimate cost = whatif.Cost(elided.plan);
      report.plan = std::move(elided.plan);
      report.estimated_cost = cost.cost;
      report.fallback = cost.fallback;
      report.reuse_materialized = true;
      report.reuse_lineage_seeds = std::move(elided.materialized_lineage);
      report.reuse_pinned = std::move(elided.pinned_snapshots);
      report.optimization_time_sec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      return report;
    }
  }
  // One cache per Optimize call, shared across phases and units: the base
  // plan of every unit, RRS seed points, and all jobs outside an RRS
  // point's perturbation cone hit the memo.
  std::optional<CostCache> cache;
  if (options_.enable_cost_cache) {
    cache.emplace(CostCache::Options{options_.cost_cache_plan_capacity,
                                     options_.cost_cache_job_capacity});
    whatif.set_cache(&*cache);
  }
  // Search tasks produce bit-identical results at any thread count, so the
  // pool is a pure wall-time knob.
  std::optional<ThreadPool> owned_pool;
  ThreadPool* pool = options_.pool;
  if (pool == nullptr && options_.threads > 1) {
    owned_pool.emplace(options_.threads);
    pool = &*owned_pool;
  }

  std::vector<std::shared_ptr<Transformation>> vertical_group;
  if (options_.enable_intra_vertical) {
    vertical_group.push_back(std::make_shared<IntraJobVerticalPacking>());
  }
  if (options_.enable_inter_vertical) {
    vertical_group.push_back(std::make_shared<InterJobVerticalPacking>());
  }
  if (options_.enable_partition_function) {
    vertical_group.push_back(std::make_shared<PartitionFunctionTransform>());
  }

  std::vector<std::shared_ptr<Transformation>> horizontal_group;
  if (options_.enable_horizontal) {
    horizontal_group.push_back(
        std::make_shared<HorizontalPacking>(options_.extended_horizontal));
  }
  if (options_.enable_partition_function) {
    horizontal_group.push_back(
        std::make_shared<PartitionFunctionTransform>());
  }

  Plan current = plan;
  std::vector<std::vector<std::shared_ptr<Transformation>>> phases;
  std::vector<std::string> phase_names;
  if (options_.flip_phase_order) {
    phases = {horizontal_group, vertical_group};
    phase_names = {"horizontal", "vertical"};
  } else {
    phases = {vertical_group, horizontal_group};
    phase_names = {"vertical", "horizontal"};
  }
  bool configuration_pass_done = false;
  for (size_t i = 0; i < phases.size(); ++i) {
    const auto& group = phases[i];
    std::string name = phase_names[i];
    if (group.empty()) {
      // A traversal with no structural transformations is a pure
      // configuration pass. Under a fixed RRS seed it is idempotent, so
      // running it once per empty group would repeat identical work.
      if (!options_.enable_configuration || configuration_pass_done) continue;
      configuration_pass_done = true;
      name = "configuration";
    }
    auto p0 = std::chrono::steady_clock::now();
    const int units_before = report.units_processed;
    const int subplans_before = report.subplans_enumerated;
    STUBBY_ASSIGN_OR_RETURN(current,
                            RunPhase(std::move(current), group, whatif, pool,
                                     &report));
    PhaseReport phase;
    phase.name = std::move(name);
    phase.wall_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - p0)
            .count();
    phase.units_processed = report.units_processed - units_before;
    phase.subplans_enumerated = report.subplans_enumerated - subplans_before;
    report.phases.push_back(std::move(phase));
  }

  // Tier 2: rewrite stored whole jobs and map-prefixes of the optimized
  // plan into snapshot scans. Re-cost after a rewrite — the what-if engine
  // prices materialized scans from the stored datasets' observed sizes
  // (their annotations), so the reported estimate reflects the savings.
  if (reuse_enabled) {
    ReuseRewriter rewriter(options_.reuse_store, options_.reuse_dfs);
    STUBBY_ASSIGN_OR_RETURN(ReuseRewriteResult rewritten,
                            rewriter.Rewrite(current));
    report.reuse.Add(rewritten.stats);
    if (rewritten.changed) {
      current = std::move(rewritten.plan);
      report.reuse_lineage_seeds = std::move(rewritten.materialized_lineage);
      report.reuse_pinned = std::move(rewritten.pinned_snapshots);
    }
  }

  CostEstimate final_cost = whatif.Cost(current);
  report.plan = std::move(current);
  report.estimated_cost = final_cost.cost;
  report.fallback = final_cost.fallback;
  report.optimization_time_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

}  // namespace stubby

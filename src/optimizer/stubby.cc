#include "optimizer/stubby.h"

#include <chrono>
#include <optional>
#include <set>

#include "common/logging.h"
#include "common/threading.h"
#include "optimizer/bloom.h"
#include "optimizer/horizontal.h"
#include "optimizer/partition_fn.h"
#include "optimizer/vertical.h"
#include "reuse/probe_cache.h"
#include "reuse/rewriter.h"

namespace stubby {

CostKey ReuseSaltFromOptions(const StubbyOptions& options) {
  CostDigest d;
  d.Mix(uint64_t{0x5265557353616c74ull});  // "ReUsSalt"
  d.Mix(options.enable_intra_vertical);
  d.Mix(options.enable_inter_vertical);
  d.Mix(options.enable_horizontal);
  d.Mix(options.extended_horizontal);
  d.Mix(options.enable_partition_function);
  d.Mix(options.enable_configuration);
  d.Mix(options.flip_phase_order);
  d.Mix(static_cast<uint64_t>(options.unit.max_subplans));
  d.Mix(static_cast<uint64_t>(options.unit.max_depth));
  d.Mix(options.unit.enable_configuration);
  d.Mix(options.unit.seed);
  d.Mix(static_cast<uint64_t>(options.unit.rrs.budget));
  d.Mix(static_cast<uint64_t>(options.unit.rrs.explore_samples));
  d.Mix(static_cast<uint64_t>(options.unit.rrs.exploit_samples));
  d.Mix(options.unit.rrs.init_radius);
  d.Mix(options.unit.rrs.shrink);
  d.Mix(options.unit.rrs.min_radius);
  return d.value();
}

Result<Plan> StubbyOptimizer::RunPhase(
    Plan plan, const std::vector<std::shared_ptr<Transformation>>& group,
    const WhatIfEngine& whatif, ThreadPool* pool, OptimizeReport* report,
    ReuseSearchState* reuse_state) const {
  UnitSearchOptions unit_options = options_.unit;
  unit_options.enable_configuration = options_.enable_configuration;
  ReuseSearchContext reuse_ctx;
  if (reuse_state != nullptr) {
    reuse_ctx.store = options_.reuse_store;
    reuse_ctx.dfs = options_.reuse_dfs;
    reuse_ctx.seeds = &reuse_state->seeds;
    reuse_ctx.probe_cache = reuse_state->probe_cache;
  }
  UnitOptimizer optimizer(group, &whatif, unit_options, pool, reuse_ctx);

  std::set<std::string> processed;
  const size_t max_iterations = plan.num_jobs() * 8 + 8;
  size_t iterations = 0;
  while (auto unit = NextUnit(plan, processed)) {
    if (++iterations > max_iterations) {
      return Status::Internal("unit traversal did not converge");
    }
    STUBBY_ASSIGN_OR_RETURN(UnitResult result,
                            optimizer.Optimize(plan, *unit));
    plan = std::move(result.plan);
    report->units_processed++;
    report->subplans_enumerated += result.subplans_enumerated;
    for (const auto& d : result.applied) report->applied.push_back(d);
    if (reuse_state != nullptr) {
      report->reuse.search_probes += result.reuse.search_probes;
      report->reuse.search_priced += result.reuse.search_priced;
      report->reuse.search_won += result.reuse.search_won;
      report->reuse.probe_cache_hits += result.reuse.probe_cache_hits;
      report->reuse.probe_cache_misses += result.reuse.probe_cache_misses;
      report->reuse.signature_keys_computed +=
          result.reuse.signature_keys_computed;
      if (result.reuse_won) {
        ++reuse_state->won_units;
        reuse_state->stats.whole_job_hits += result.reuse.whole_job_hits;
        reuse_state->stats.prefix_hits += result.reuse.prefix_hits;
        reuse_state->stats.jobs_elided += result.reuse.jobs_elided;
        reuse_state->stats.bytes_saved += result.reuse.bytes_saved;
        // New materialized vertices become lineage seeds for later units.
        for (const auto& [id, key] : result.materialized_lineage) {
          reuse_state->seeds[id] = key;
        }
      }
    }
    // Producers whose id survived are done; producers packed into a new
    // job serve as producers again in a later unit (Figure 9's J4').
    for (const auto& p : unit->producers) {
      if (!result.renames.count(p)) processed.insert(p);
    }
  }
  return plan;
}

Result<OptimizeReport> StubbyOptimizer::Optimize(const Plan& plan) const {
  auto t0 = std::chrono::steady_clock::now();
  STUBBY_RETURN_NOT_OK(plan.Validate());

  WhatIfEngine whatif(plan.cluster());
  OptimizeReport report;
  whatif.set_instrumentation(&report.costing);

  const bool reuse_enabled =
      options_.reuse_store != nullptr && options_.reuse_dfs != nullptr;

  // Tier 1: if every terminal output of the workflow is stored under this
  // option set, skip optimization and execution planning entirely.
  if (reuse_enabled && options_.reuse_whole_workflow) {
    ReuseRewriter rewriter(options_.reuse_store, options_.reuse_dfs);
    STUBBY_ASSIGN_OR_RETURN(
        ReuseRewriteResult elided,
        rewriter.ElideWholeWorkflow(plan, ReuseSaltFromOptions(options_)));
    report.reuse.Add(elided.stats);
    if (elided.changed) {
      CostEstimate cost = whatif.Cost(elided.plan);
      report.plan = std::move(elided.plan);
      report.estimated_cost = cost.cost;
      report.fallback = cost.fallback;
      report.reuse_materialized = true;
      report.reuse_lineage_seeds = std::move(elided.materialized_lineage);
      report.reuse_pinned = std::move(elided.pinned_snapshots);
      report.optimization_time_sec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      return report;
    }
  }
  // One cache per Optimize call, shared across phases and units: the base
  // plan of every unit, RRS seed points, and all jobs outside an RRS
  // point's perturbation cone hit the memo. An external `cost_cache` (the
  // stubbyd shared-service memo) replaces the per-call cache outright.
  std::optional<CostCache> cache;
  if (options_.cost_cache != nullptr) {
    whatif.set_cache(options_.cost_cache);
  } else if (options_.enable_cost_cache) {
    cache.emplace(CostCache::Options{options_.cost_cache_plan_capacity,
                                     options_.cost_cache_job_capacity});
    whatif.set_cache(&*cache);
  }
  // Search tasks produce bit-identical results at any thread count, so the
  // pool is a pure wall-time knob.
  std::optional<ThreadPool> owned_pool;
  ThreadPool* pool = options_.pool;
  if (pool == nullptr && options_.threads > 1) {
    owned_pool.emplace(options_.threads);
    pool = &*owned_pool;
  }

  std::vector<std::shared_ptr<Transformation>> vertical_group;
  if (options_.enable_intra_vertical) {
    vertical_group.push_back(std::make_shared<IntraJobVerticalPacking>());
  }
  if (options_.enable_inter_vertical) {
    vertical_group.push_back(std::make_shared<InterJobVerticalPacking>());
  }
  if (options_.enable_partition_function) {
    vertical_group.push_back(std::make_shared<PartitionFunctionTransform>());
  }
  if (options_.bloom_transfer) {
    vertical_group.push_back(std::make_shared<BloomTransferTransform>());
  }

  std::vector<std::shared_ptr<Transformation>> horizontal_group;
  if (options_.enable_horizontal) {
    horizontal_group.push_back(
        std::make_shared<HorizontalPacking>(options_.extended_horizontal));
  }
  if (options_.enable_partition_function) {
    horizontal_group.push_back(
        std::make_shared<PartitionFunctionTransform>());
  }
  if (options_.bloom_transfer) {
    horizontal_group.push_back(std::make_shared<BloomTransferTransform>());
  }

  Plan current = plan;
  std::vector<std::vector<std::shared_ptr<Transformation>>> phases;
  std::vector<std::string> phase_names;
  if (options_.flip_phase_order) {
    phases = {horizontal_group, vertical_group};
    phase_names = {"horizontal", "vertical"};
  } else {
    phases = {vertical_group, horizontal_group};
    phase_names = {"vertical", "horizontal"};
  }
  // Reuse-aware search: the unit search prices every candidate's rewritten
  // form too, so the greedy minimum is taken over reuse-aware costs.
  const bool aware_search = reuse_enabled && options_.reuse_aware_search;
  ReuseSearchState reuse_state;
  std::map<std::string, CostKey> base_seeds;
  // One signature memo per Optimize call, shared across phases and units
  // like the cost cache: unit base plans, upstream non-unit jobs, and
  // repeat configurations all resolve their JobReuseKey from the memo.
  std::optional<ReuseProbeCache> probe_cache;
  if (aware_search) {
    base_seeds = BaseInputContentSeeds(plan, *options_.reuse_dfs);
    reuse_state.seeds = base_seeds;
    if (options_.reuse_probe_cache) {
      probe_cache.emplace();
      reuse_state.probe_cache = &*probe_cache;
    }
  }
  auto run_phases = [&](Plan p, OptimizeReport* r,
                        ReuseSearchState* rs) -> Result<Plan> {
    bool configuration_pass_done = false;
    for (size_t i = 0; i < phases.size(); ++i) {
      const auto& group = phases[i];
      std::string name = phase_names[i];
      if (group.empty()) {
        // A traversal with no structural transformations is a pure
        // configuration pass. Under a fixed RRS seed it is idempotent, so
        // running it once per empty group would repeat identical work.
        if (!options_.enable_configuration || configuration_pass_done) {
          continue;
        }
        configuration_pass_done = true;
        name = "configuration";
      }
      auto p0 = std::chrono::steady_clock::now();
      const int units_before = r->units_processed;
      const int subplans_before = r->subplans_enumerated;
      STUBBY_ASSIGN_OR_RETURN(
          p, RunPhase(std::move(p), group, whatif, pool, r, rs));
      PhaseReport phase;
      phase.name = std::move(name);
      phase.wall_sec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - p0)
              .count();
      phase.units_processed = r->units_processed - units_before;
      phase.subplans_enumerated = r->subplans_enumerated - subplans_before;
      r->phases.push_back(std::move(phase));
    }
    return p;
  };
  STUBBY_ASSIGN_OR_RETURN(
      current, run_phases(std::move(current), &report,
                          aware_search ? &reuse_state : nullptr));

  // A run with no structural groups and configuration off executes no
  // phase at all — the aware search never saw the plan, so the post-hoc
  // rewrite must still run.
  const bool search_ran = !report.phases.empty();
  if (reuse_enabled && (!aware_search || !search_ran)) {
    // Tier 2 (post-hoc mode): rewrite stored whole jobs and map-prefixes
    // of the optimized plan into snapshot scans. Re-cost after a rewrite —
    // the what-if engine prices materialized scans from the stored
    // datasets' observed sizes (their annotations), so the reported
    // estimate reflects the savings.
    ReuseRewriter rewriter(options_.reuse_store, options_.reuse_dfs);
    RewriteProbe posthoc_probe;
    posthoc_probe.memo = reuse_state.probe_cache;
    STUBBY_ASSIGN_OR_RETURN(ReuseRewriteResult rewritten,
                            rewriter.Rewrite(current, &posthoc_probe));
    report.reuse.Add(rewritten.stats);
    if (rewritten.changed) {
      current = std::move(rewritten.plan);
      report.reuse_lineage_seeds = std::move(rewritten.materialized_lineage);
      report.reuse_pinned = std::move(rewritten.pinned_snapshots);
    }
  } else if (aware_search && options_.reuse_store->num_entries() > 0) {
    // Post-hoc floor: greedy per-unit reuse choices are path-dependent (an
    // early elision reshapes later units' RRS landscapes), so guarantee
    // the aware plan never prices above the blind-search-plus-rewrite
    // baseline by computing that baseline and keeping the cheaper plan.
    // When no unit chose a rewritten candidate the aware run IS the blind
    // run, so the blind phases need not re-run — but the whole-plan
    // post-hoc probe must still run: per-unit repricing can reject
    // rewrites that cross-unit cost interactions make profitable at the
    // whole-plan level.
    auto f0 = std::chrono::steady_clock::now();
    OptimizeReport floor_report;
    Plan blind;
    if (reuse_state.won_units > 0) {
      STUBBY_ASSIGN_OR_RETURN(blind, run_phases(plan, &floor_report, nullptr));
    } else {
      blind = current;
    }
    ReuseRewriter rewriter(options_.reuse_store, options_.reuse_dfs);
    // The whole-plan probe runs serially, so it reads and fills the shared
    // memo directly (no overlay); the search already seeded most of the
    // blind plan's signatures.
    RewriteProbe floor_probe;
    floor_probe.memo = reuse_state.probe_cache;
    STUBBY_ASSIGN_OR_RETURN(
        ReuseRewriteResult posthoc,
        rewriter.PlanForScope(blind, /*scope=*/nullptr, &base_seeds,
                              &floor_probe));
    report.units_processed += floor_report.units_processed;
    report.subplans_enumerated += floor_report.subplans_enumerated;
    report.reuse.lookups += posthoc.stats.lookups;
    report.reuse.probe_cache_hits += posthoc.stats.probe_cache_hits;
    report.reuse.probe_cache_misses += posthoc.stats.probe_cache_misses;
    report.reuse.signature_keys_computed +=
        posthoc.stats.signature_keys_computed;
    PhaseReport floor_phase;
    floor_phase.name = "reuse-floor";
    floor_phase.wall_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - f0)
            .count();
    floor_phase.units_processed = floor_report.units_processed;
    floor_phase.subplans_enumerated = floor_report.subplans_enumerated;
    report.phases.push_back(std::move(floor_phase));

    const double aware_cost = whatif.Cost(current).cost;
    const double floor_cost =
        whatif.Cost(posthoc.changed ? posthoc.plan : blind).cost;
    if (floor_cost < aware_cost) {
      current = posthoc.changed ? std::move(posthoc.plan) : std::move(blind);
      if (reuse_state.won_units > 0) {
        // The aware plan's transform trail is stale; swap in the blind
        // run's. With no won units, report.applied already IS that trail.
        report.applied = std::move(floor_report.applied);
      }
      report.applied.push_back("reuse: post-hoc rewrite won the floor");
      reuse_state.stats = ReuseStats{};
      reuse_state.stats.whole_job_hits = posthoc.stats.whole_job_hits;
      reuse_state.stats.prefix_hits = posthoc.stats.prefix_hits;
      reuse_state.stats.jobs_elided = posthoc.stats.jobs_elided;
      reuse_state.stats.bytes_saved = posthoc.stats.bytes_saved;
      reuse_state.seeds = std::move(posthoc.materialized_lineage);
    }
  }
  if (aware_search && search_ran) {
    // Commit the chosen plan's hits: bump hit counts and recency for, and
    // pin, every snapshot the plan scans (dataset-id order, so store state
    // evolves deterministically), and fold the winning rewrites' counters
    // into the report. Planning probes never touched the store, so this is
    // the only store mutation of the whole optimization.
    report.reuse.whole_job_hits += reuse_state.stats.whole_job_hits;
    report.reuse.prefix_hits += reuse_state.stats.prefix_hits;
    report.reuse.jobs_elided += reuse_state.stats.jobs_elided;
    report.reuse.bytes_saved += reuse_state.stats.bytes_saved;
    for (const auto& [id, v] : current.datasets()) {
      if (v.materialized_from.empty()) continue;
      auto it = reuse_state.seeds.find(id);
      if (it == reuse_state.seeds.end()) continue;
      const StoredResult* entry = options_.reuse_store->Lookup(it->second);
      if (entry == nullptr) continue;
      options_.reuse_store->Pin(entry->snapshot_id);
      report.reuse_pinned.push_back(entry->snapshot_id);
      report.reuse_lineage_seeds.emplace(id, it->second);
    }
  }

  CostEstimate final_cost = whatif.Cost(current);
  report.plan = std::move(current);
  report.estimated_cost = final_cost.cost;
  report.fallback = final_cost.fallback;
  report.optimization_time_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

}  // namespace stubby

// Mid-execution suffix re-optimization (the Starfish profile/what-if loop
// closed at runtime): once a prefix of a workflow has executed, the
// remaining jobs form a standalone workflow whose inputs — the executed
// jobs' outputs — now exist physically in the DFS. BuildSuffixPlan turns
// that remainder into a self-contained plan whose promoted base inputs are
// annotated with the *observed* dataset sizes, and ReoptimizeSuffix
// re-profiles it against the actual data and re-runs the full unit
// optimizer over it. The adaptive runner (exec/adaptive_runner.h) splices
// the result back into its execution loop.
//
// Everything here is a pure function of (plan, executed set, DFS contents,
// options): no wall-clock, no randomness beyond the seeded RRS search —
// which is what makes the adaptive loop bit-identical at any thread count.

#pragma once

#include <set>
#include <string>

#include "common/result.h"
#include "dfs/dfs.h"
#include "optimizer/stubby.h"
#include "workflow/plan.h"

namespace stubby {

/// Builds the plan for the not-yet-executed remainder of `plan` after the
/// jobs in `executed` have run. Executed jobs are removed; every dataset
/// they produced that the remainder still reads is promoted to a base
/// input whose annotation (records, bytes, partitions, layout) is taken
/// from the actual stored dataset in `dfs` — observed statistics fed back
/// as corrected profiles. Annotations of original base inputs are
/// re-grounded the same way, so a mis-profiled input size cannot survive
/// into the re-plan. Datasets nothing in the remainder touches (executed
/// intermediates and already-written terminal outputs) are dropped.
Result<Plan> BuildSuffixPlan(const Plan& plan,
                             const std::set<std::string>& executed,
                             const Dfs& dfs);

/// Re-profiles `suffix` by instrumented execution against a scratch copy
/// of `dfs` (exact statistics on the actual intermediate data, the
/// profiler's normal measurement path) and re-optimizes it with `options`.
/// Reuse is stripped: a mid-execution re-plan must never touch the shared
/// ResultStore, so stubbyd's journal-replay validation stays sound.
Result<OptimizeReport> ReoptimizeSuffix(const Plan& suffix, const Dfs& dfs,
                                        const StubbyOptions& options,
                                        ThreadPool* pool);

}  // namespace stubby

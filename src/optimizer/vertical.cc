#include "optimizer/vertical.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "cost/adjust.h"

namespace stubby {

namespace {

/// True if `prefix` is a literal prefix of `seq`.
bool IsPrefix(const std::vector<std::string>& prefix,
              const std::vector<std::string>& seq) {
  return prefix.size() <= seq.size() &&
         std::equal(prefix.begin(), prefix.end(), seq.begin());
}

/// Index of the branch of `job` whose (final) output is `dataset`, or -1.
int BranchProducing(const JobVertex& job, const std::string& dataset) {
  for (size_t i = 0; i < job.branches.size(); ++i) {
    if (job.branches[i].output_dataset == dataset) return static_cast<int>(i);
  }
  return -1;
}

bool InUnit(const std::vector<std::string>& unit_jobs, const std::string& id) {
  return std::find(unit_jobs.begin(), unit_jobs.end(), id) != unit_jobs.end();
}

}  // namespace

// ---------------------------------------------------------------------------
// Intra-job vertical packing (Section 3.1)
// ---------------------------------------------------------------------------

std::vector<Application> IntraJobVerticalPacking::FindApplications(
    const Plan& plan, const std::vector<std::string>& unit_jobs) const {
  std::vector<Application> apps;

  for (const std::string& jc_id : unit_jobs) {
    auto jcr = plan.GetJob(jc_id);
    if (!jcr.ok()) continue;
    const JobVertex& jc = **jcr;
    if (jc.branches.size() != 1) continue;
    const Branch& bc = jc.branches[0];
    if (bc.map_only() || bc.merge_mode()) continue;

    // Information-spectrum gate: the consumer's K2 schema annotation is
    // required to check the data-flow invariant at all.
    if (!bc.annotations.schema || !bc.annotations.schema->k2) continue;
    const FieldSet& k2c = *bc.annotations.schema->k2;
    std::vector<std::string> group_order = bc.GroupFields();
    if (FieldSet(group_order.begin(), group_order.end()) != k2c) continue;

    // Examine every input of the consumer. Each must either come from a
    // producer whose shuffle can be rewritten to satisfy the consumer's
    // grouping (one-to-one / many-to-one case), or be a dataset — base or
    // produced by an earlier packing — whose annotated layout already
    // provides the grouping (none-to-one case and cascaded packing).
    struct ProducerSite {
      std::string job_id;
      int branch_index;
    };
    std::vector<ProducerSite> producer_sites;
    std::set<std::string> producer_jobs;
    std::vector<int> layout_partition_counts;
    bool ok = true;

    for (const BranchInput& input : bc.inputs) {
      if (!input.prune_partitions.empty()) {
        ok = false;  // pruning depends on the current partitioning
        break;
      }
      auto dvr = plan.GetDataset(input.dataset_id);
      if (!dvr.ok()) {
        ok = false;
        break;
      }
      std::string pid = plan.ProducerOf(input.dataset_id);
      const JobVertex* pj = nullptr;
      const Branch* bp = nullptr;
      int bi = -1;
      if (!pid.empty()) {
        auto pjr = plan.GetJob(pid);
        if (!pjr.ok()) {
          ok = false;
          break;
        }
        pj = *pjr;
        bi = BranchProducing(*pj, input.dataset_id);
        if (bi >= 0) bp = &pj->branches[static_cast<size_t>(bi)];
      }

      if (bp != nullptr && !bp->map_only()) {
        // Shuffle path: rewrite the producer's partition function.
        if (!InUnit(unit_jobs, pid) || pid == jc_id) {
          ok = false;
          break;
        }
        // Data-flow invariant via schema annotations: Jc.K2 must flow
        // unchanged from the producer's reduce input to the consumer's map
        // output (field-name identity).
        const auto& sa = bp->annotations.schema;
        if (!sa || !sa->k2 || !sa->k3) {
          ok = false;
          break;
        }
        FieldSet k3v3 = *sa->k3;
        if (sa->v3) k3v3 = Union(k3v3, *sa->v3);
        if (!IsSubset(k2c, *sa->k2) || !IsSubset(k2c, k3v3)) {
          ok = false;
          break;
        }
        // Safe-reordering restriction: the consumer's grouping must be a
        // literal prefix of the producer's grouping order, so the
        // producer's sort order can stay unchanged.
        if (!IsPrefix(group_order, bp->GroupFields())) {
          ok = false;
          break;
        }
        // Structural sanity: the new partition fields exist on the
        // producer's shuffle schema.
        bool have_fields = std::all_of(
            group_order.begin(), group_order.end(), [&](const std::string& f) {
              return bp->map_output_schema.Contains(f);
            });
        if (!have_fields) {
          ok = false;
          break;
        }
        // A frozen producer partition must already be suitable; whether the
        // spec changes decides how strict we are about other consumers.
        bool frozen_compatible =
            pj->conditions.partition_frozen &&
            bp->partition.partition_fields == group_order &&
            IsPrefix(group_order, bp->partition.sort_fields);
        if (pj->conditions.partition_frozen && !frozen_compatible) {
          ok = false;
          break;
        }
        bool spec_changes =
            bp->partition.partition_fields != group_order ||
            bp->partition.type != PartitionType::kHash;
        for (const std::string& other : plan.ConsumersOf(input.dataset_id)) {
          if (other == jc_id) continue;
          // Other consumers keep reading the dataset; if the spec changes,
          // their reads must not depend on the current layout.
          auto jo = plan.GetJob(other);
          if (!jo.ok()) continue;
          for (const Branch& ob : (*jo)->branches) {
            for (const BranchInput& oin : ob.inputs) {
              if (oin.dataset_id == input.dataset_id && spec_changes &&
                  (oin.aligned || !oin.prune_partitions.empty())) {
                ok = false;
              }
            }
          }
        }
        if (!ok) break;
        producer_sites.push_back(ProducerSite{pid, bi});
        producer_jobs.insert(pid);
      } else {
        // Layout path: the dataset (base, or output of a map-only job) must
        // already be partitioned and ordered compatibly.
        const DatasetAnnotation& ann = (*dvr)->annotation;
        if (!ann.layout || !ann.layout->partitioning || !ann.num_partitions) {
          ok = false;
          break;
        }
        const PartitionSpec& ps = *ann.layout->partitioning;
        if (ps.partition_fields != group_order ||
            !IsPrefix(group_order, ann.layout->order_fields)) {
          ok = false;
          break;
        }
        layout_partition_counts.push_back(*ann.num_partitions);
      }
    }
    if (!ok ||
        (producer_sites.empty() && layout_partition_counts.empty())) {
      continue;
    }

    // Co-partitioning across inputs: layout-path inputs fix the partition
    // count; producers already pinned contribute their count; multiple
    // distinct sources must agree on one count.
    int fixed_reduce = -1;
    bool conflict = false;
    auto adopt = [&](int c) {
      if (fixed_reduce < 0) {
        fixed_reduce = c;
      } else if (fixed_reduce != c) {
        conflict = true;
      }
    };
    for (int c : layout_partition_counts) adopt(c);
    for (const auto& pid : producer_jobs) {
      auto pj = plan.GetJob(pid);
      if ((*pj)->conditions.num_reduce_fixed) {
        adopt(*(*pj)->conditions.num_reduce_fixed);
      }
    }
    if (conflict) continue;
    size_t distinct_sources =
        producer_jobs.size() + (layout_partition_counts.empty() ? 0 : 1);
    if (distinct_sources > 1 && fixed_reduce < 0) {
      // Pin all producers to a common reduce count (many-to-one extension).
      for (const auto& pid : producer_jobs) {
        auto pj = plan.GetJob(pid);
        fixed_reduce =
            std::max(fixed_reduce, (*pj)->EffectiveReduceTasks());
      }
    }

    Application app;
    app.transform_name = name();
    app.description =
        StrFormat("intra-pack %s (reduce moves map-side, grouping on %s)",
                  jc_id.c_str(), FieldSetToString(k2c).c_str());
    std::vector<std::pair<std::string, int>> sites;
    for (const auto& s : producer_sites) sites.emplace_back(s.job_id, s.branch_index);
    app.apply = [jc_id, group_order, fixed_reduce,
                 sites](const Plan& plan_in) -> Result<Plan> {
      Plan np = plan_in;
      // Postcondition 1: rewrite each producer's partition function to
      // partition on Kp∩Kc (= Jc.K2 here) while keeping the sort order,
      // which already satisfies both groupings.
      for (const auto& [pid, bi] : sites) {
        STUBBY_ASSIGN_OR_RETURN(JobVertex * pj, np.GetMutableJob(pid));
        Branch& bp = pj->branches[static_cast<size_t>(bi)];
        bp.partition.type = PartitionType::kHash;
        bp.partition.partition_fields = group_order;
        bp.partition.split_points.clear();
        bp.partition.split_points_from.clear();
        pj->conditions.partition_frozen = true;
        if (fixed_reduce > 0) {
          pj->conditions.num_reduce_fixed = fixed_reduce;
          pj->config.num_reduce_tasks = fixed_reduce;
        }
        // The produced dataset's planned layout now reflects the rewrite.
        STUBBY_ASSIGN_OR_RETURN(DatasetVertex * dv,
                                np.GetMutableDataset(bp.output_dataset));
        dv->layout = DeriveOutputLayout(bp, pj->config, dv->schema);
        dv->annotation.layout = dv->layout;
        if (fixed_reduce > 0) dv->annotation.num_partitions = fixed_reduce;
      }
      // Postcondition 2: the consumer becomes a Map-only job with
      // partition-aligned reads; its reduce pipeline moves map-side as
      // merged stages over the co-aligned inputs.
      STUBBY_ASSIGN_OR_RETURN(JobVertex * jcm, np.GetMutableJob(jc_id));
      Branch& bcm = jcm->branches[0];
      bcm.merged_map_stages = std::move(bcm.reduce_stages);
      bcm.reduce_stages.clear();
      bcm.merge_schema = bcm.map_output_schema;
      bcm.merge_sort_fields = bcm.partition.sort_fields;
      Schema out_schema = bcm.merged_map_stages.back().output_schema();
      bcm.map_output_schema = out_schema;
      // Co-aligned tasks read partition t and write partition t, so the
      // grouping layout survives into the consumer's output.
      PartitionSpec preserved;
      preserved.type = PartitionType::kHash;
      preserved.partition_fields = group_order;
      preserved.sort_fields = bcm.merge_sort_fields;
      bcm.preserved_partition = preserved;
      bcm.partition = PartitionSpec();
      bcm.combiner = nullptr;
      for (BranchInput& in : bcm.inputs) in.aligned = true;
      jcm->config.use_combiner = false;
      if (bcm.annotations.schema) {
        bcm.annotations.schema->k2.reset();
        bcm.annotations.schema->v2.reset();
      }
      // Record what the optimizer now knows about the consumer's output —
      // this is what lets a later packing cascade off it (e.g. the second
      // join of the Business Analytics workflow).
      {
        STUBBY_ASSIGN_OR_RETURN(DatasetVertex * dv,
                                np.GetMutableDataset(bcm.output_dataset));
        dv->layout = DeriveOutputLayout(bcm, jcm->config, dv->schema);
        dv->annotation.layout = dv->layout;
        if (fixed_reduce > 0) dv->annotation.num_partitions = fixed_reduce;
      }
      STUBBY_RETURN_NOT_OK(np.Validate());
      return np;
    };
    apps.push_back(std::move(app));
  }
  return apps;
}

// ---------------------------------------------------------------------------
// Inter-job vertical packing (Section 3.2)
// ---------------------------------------------------------------------------

namespace {

/// Builds the "pack map-only producer into consumer" rewrite (the consumer
/// may be any shape; the packed input must be a plain size-split read).
Result<Plan> PackProducerIntoConsumer(const Plan& plan_in,
                                      const std::string& jp_id,
                                      const std::string& jc_id,
                                      const std::string& dataset,
                                      bool need_tee) {
  Plan np = plan_in;
  STUBBY_ASSIGN_OR_RETURN(const JobVertex* jpp, np.GetJob(jp_id));
  STUBBY_ASSIGN_OR_RETURN(const JobVertex* jcp, np.GetJob(jc_id));
  const JobVertex jp = *jpp;  // copies: both vertices get removed below
  JobVertex jc = *jcp;
  const Branch& bp = jp.branches[0];
  Branch& bc = jc.branches[0];

  // Locate the consumer input reading the packed dataset.
  int ii = -1;
  for (size_t i = 0; i < bc.inputs.size(); ++i) {
    if (bc.inputs[i].dataset_id == dataset) ii = static_cast<int>(i);
  }
  if (ii < 0) return Status::Internal("consumer does not read " + dataset);
  BranchInput consumed = bc.inputs[static_cast<size_t>(ii)];

  if (bp.merge_mode()) {
    // Merge-mode producer: the consumer inherits the producer's co-aligned
    // inputs and merged stages; the consumer's old map pipeline (and an
    // optional tee of the eliminated intermediate) runs after them.
    if (bc.inputs.size() != 1) {
      return Status::FailedPrecondition(
          "merge-mode producer needs a single-input consumer");
    }
    bc.inputs = bp.inputs;
    bc.merge_schema = bp.merge_schema;
    bc.merge_sort_fields = bp.merge_sort_fields;
    bc.merged_map_stages = bp.merged_map_stages;
    if (need_tee) {
      STUBBY_ASSIGN_OR_RETURN(const DatasetVertex* dv, np.GetDataset(dataset));
      AttachTee(&bc.merged_map_stages, dv->schema, dataset);
    }
    bc.merged_map_stages.insert(bc.merged_map_stages.end(),
                                consumed.map_stages.begin(),
                                consumed.map_stages.end());
  } else {
    // Replace the consumed input with the producer's inputs, each running
    // the producer's pipeline, an optional tee of the old intermediate,
    // then the consumer's old map pipeline.
    std::vector<BranchInput> new_inputs;
    for (const BranchInput& pin : bp.inputs) {
      BranchInput merged = pin;
      if (need_tee) {
        STUBBY_ASSIGN_OR_RETURN(const DatasetVertex* dv,
                                np.GetDataset(dataset));
        AttachTee(&merged.map_stages, dv->schema, dataset);
      }
      merged.map_stages.insert(merged.map_stages.end(),
                               consumed.map_stages.begin(),
                               consumed.map_stages.end());
      new_inputs.push_back(std::move(merged));
    }
    bc.inputs.erase(bc.inputs.begin() + ii);
    bc.inputs.insert(bc.inputs.begin() + ii,
                     std::make_move_iterator(new_inputs.begin()),
                     std::make_move_iterator(new_inputs.end()));
  }
  bc.annotations = MergeForVerticalPack(bp.annotations, bc.annotations,
                                         PackDirection::kProducerIntoConsumer);
  if (bc.map_only()) bc.preserved_partition = bp.preserved_partition;

  JobVertex merged;
  merged.id = jp_id + "+" + jc_id;
  merged.branches = {std::move(bc)};
  merged.branches[0].tag = merged.id;
  merged.config = jc.config;
  merged.conditions = jc.conditions;
  merged.conditions.partition_frozen =
      jc.conditions.partition_frozen || jp.conditions.partition_frozen;
  if (jp.conditions.num_reduce_fixed && !merged.branches[0].map_only() &&
      !merged.conditions.num_reduce_fixed) {
    // The producer's co-aligned task count came from its inputs' partition
    // counts, which the merged job inherits.
    merged.conditions.num_reduce_fixed = jp.conditions.num_reduce_fixed;
  }
  {
    auto dv = np.GetMutableDataset(merged.branches[0].output_dataset);
    if (dv.ok()) {
      (*dv)->layout = DeriveOutputLayout(merged.branches[0], merged.config,
                                         (*dv)->schema);
      (*dv)->annotation.layout = (*dv)->layout;
    }
  }

  np.RemoveJob(jp_id);
  np.RemoveJob(jc_id);
  STUBBY_RETURN_NOT_OK(np.AddJob(std::move(merged)));
  if (!need_tee) np.RemoveDataset(dataset);
  np.RemoveOrphanDatasets();
  STUBBY_RETURN_NOT_OK(np.Validate());
  return np;
}

/// Builds the "pack map-only consumer into producer's reduce side" rewrite.
Result<Plan> PackConsumerIntoProducer(const Plan& plan_in,
                                      const std::string& jp_id,
                                      const std::string& jc_id,
                                      const std::string& dataset,
                                      bool need_tee) {
  Plan np = plan_in;
  STUBBY_ASSIGN_OR_RETURN(const JobVertex* jpp, np.GetJob(jp_id));
  STUBBY_ASSIGN_OR_RETURN(const JobVertex* jcp, np.GetJob(jc_id));
  JobVertex jp = *jpp;
  const JobVertex jc = *jcp;
  Branch& bp = jp.branches[0];
  const Branch& bc = jc.branches[0];

  if (need_tee) {
    STUBBY_ASSIGN_OR_RETURN(const DatasetVertex* dv, np.GetDataset(dataset));
    AttachTee(&bp.reduce_stages, dv->schema, dataset);
  }
  // The junction: the consumer's per-input map pipeline followed by its
  // merged (grouped) stages run verbatim over the reduce task's output
  // stream — which is exactly the partition the consumer's aligned map task
  // used to read.
  bp.reduce_stages.insert(bp.reduce_stages.end(),
                          bc.inputs[0].map_stages.begin(),
                          bc.inputs[0].map_stages.end());
  bp.reduce_stages.insert(bp.reduce_stages.end(),
                          bc.merged_map_stages.begin(),
                          bc.merged_map_stages.end());
  bp.output_dataset = bc.output_dataset;
  bp.annotations = MergeForVerticalPack(bp.annotations, bc.annotations,
                                         PackDirection::kConsumerIntoProducer);

  JobVertex merged;
  merged.id = jp_id + "+" + jc_id;
  bp.tag = merged.id;
  merged.branches = {std::move(bp)};
  merged.config = jp.config;
  merged.conditions = jp.conditions;

  np.RemoveJob(jp_id);
  np.RemoveJob(jc_id);
  STUBBY_RETURN_NOT_OK(np.AddJob(std::move(merged)));
  if (!need_tee) np.RemoveDataset(dataset);
  np.RemoveOrphanDatasets();
  STUBBY_RETURN_NOT_OK(np.Validate());
  return np;
}

/// One-to-many extension (i): prepends a copy of the map-only producer's
/// pipeline to every consumer's read of `dataset`, then removes the
/// producer job and the intermediate dataset.
Result<Plan> ReplicateProducerIntoConsumers(
    const Plan& plan_in, const std::string& jp_id,
    const std::vector<std::string>& consumer_ids, const std::string& dataset) {
  Plan np = plan_in;
  STUBBY_ASSIGN_OR_RETURN(const JobVertex* jpp, np.GetJob(jp_id));
  const JobVertex jp = *jpp;
  const Branch& bp = jp.branches[0];

  for (const std::string& jc_id : consumer_ids) {
    STUBBY_ASSIGN_OR_RETURN(JobVertex * jc, np.GetMutableJob(jc_id));
    Branch& bc = jc->branches[0];
    int ii = -1;
    for (size_t i = 0; i < bc.inputs.size(); ++i) {
      if (bc.inputs[i].dataset_id == dataset) ii = static_cast<int>(i);
    }
    if (ii < 0) {
      return Status::Internal("consumer " + jc_id + " does not read " +
                              dataset);
    }
    BranchInput consumed = bc.inputs[static_cast<size_t>(ii)];
    if (bp.merge_mode()) {
      bc.inputs = bp.inputs;
      bc.merge_schema = bp.merge_schema;
      bc.merge_sort_fields = bp.merge_sort_fields;
      bc.merged_map_stages = bp.merged_map_stages;
      bc.merged_map_stages.insert(bc.merged_map_stages.end(),
                                  consumed.map_stages.begin(),
                                  consumed.map_stages.end());
    } else {
      std::vector<BranchInput> new_inputs;
      for (const BranchInput& pin : bp.inputs) {
        BranchInput merged = pin;
        merged.map_stages.insert(merged.map_stages.end(),
                                 consumed.map_stages.begin(),
                                 consumed.map_stages.end());
        new_inputs.push_back(std::move(merged));
      }
      bc.inputs.erase(bc.inputs.begin() + ii);
      bc.inputs.insert(bc.inputs.begin() + ii,
                       std::make_move_iterator(new_inputs.begin()),
                       std::make_move_iterator(new_inputs.end()));
    }
    bc.annotations = MergeForVerticalPack(
        bp.annotations, bc.annotations,
        PackDirection::kProducerIntoConsumer);
    if (bc.map_only()) bc.preserved_partition = bp.preserved_partition;
    std::string new_id = jp_id + "+" + jc_id;
    JobVertex merged = *jc;
    merged.id = new_id;
    merged.branches[0].tag = new_id;
    merged.conditions.partition_frozen =
        merged.conditions.partition_frozen || jp.conditions.partition_frozen;
    np.RemoveJob(jc_id);
    STUBBY_RETURN_NOT_OK(np.AddJob(std::move(merged)));
  }
  np.RemoveJob(jp_id);
  np.RemoveDataset(dataset);
  np.RemoveOrphanDatasets();
  STUBBY_RETURN_NOT_OK(np.Validate());
  return np;
}

}  // namespace

std::vector<Application> InterJobVerticalPacking::FindApplications(
    const Plan& plan, const std::vector<std::string>& unit_jobs) const {
  std::vector<Application> apps;

  for (const std::string& jp_id : unit_jobs) {
    auto jpr = plan.GetJob(jp_id);
    if (!jpr.ok()) continue;
    const JobVertex& jp = **jpr;
    if (jp.branches.size() != 1) continue;
    const Branch& bp = jp.branches[0];
    const std::string dataset = bp.output_dataset;
    auto dvr = plan.GetDataset(dataset);
    if (!dvr.ok()) continue;
    std::vector<std::string> consumers = plan.ConsumersOf(dataset);

    if (jp.map_only() && consumers.size() > 1 &&
        !(*dvr)->is_workflow_output) {
      // One-to-many extension, choice (i): replicate the map-only
      // producer's functions into every consumer's map pipeline,
      // eliminating the job and the intermediate dataset entirely.
      bool all_plain = true;
      for (const std::string& jc_id : consumers) {
        auto jcr = plan.GetJob(jc_id);
        if (!jcr.ok() || (*jcr)->branches.size() != 1) {
          all_plain = false;
          break;
        }
        int reads = 0;
        for (const BranchInput& in : (*jcr)->branches[0].inputs) {
          if (in.dataset_id != dataset) continue;
          ++reads;
          if (in.aligned || !in.prune_partitions.empty()) all_plain = false;
        }
        if (reads != 1) all_plain = false;
        // Merge-mode producers need single-input consumers (the producer's
        // aligned inputs replace the consumer's only input).
        if (bp.merge_mode() && (*jcr)->branches[0].inputs.size() != 1) {
          all_plain = false;
        }
      }
      if (all_plain) {
        Application app;
        app.transform_name = name();
        app.description =
            StrFormat("inter-pack map-only %s replicated into %zu consumers",
                      jp_id.c_str(), consumers.size());
        std::string producer_id = jp_id;
        for (const std::string& jc_id : consumers) {
          app.renames[jc_id] = jp_id + "+" + jc_id;
        }
        app.renames[jp_id] = jp_id + "+" + consumers[0];
        std::vector<std::string> consumer_ids = consumers;
        app.apply = [producer_id, dataset,
                     consumer_ids](const Plan& plan_in) -> Result<Plan> {
          return ReplicateProducerIntoConsumers(plan_in, producer_id,
                                                consumer_ids, dataset);
        };
        apps.push_back(std::move(app));
      }
    }

    if (jp.map_only()) {
      // Map-only producer packs into a consumer; one-to-many uses the tee
      // extension to keep the dataset for the remaining consumers.
      for (const std::string& jc_id : consumers) {
        if (!InUnit(unit_jobs, jc_id) || jc_id == jp_id) continue;
        auto jcr = plan.GetJob(jc_id);
        if (!jcr.ok()) continue;
        const JobVertex& jc = **jcr;
        if (jc.branches.size() != 1) continue;
        const Branch& bc = jc.branches[0];
        // The packed input must be a plain read (no alignment/pruning on
        // it; merged-stage consumers depend on partition boundaries).
        bool plain = true;
        int reads = 0;
        for (const BranchInput& in : bc.inputs) {
          if (in.dataset_id != dataset) continue;
          ++reads;
          if (in.aligned || !in.prune_partitions.empty()) plain = false;
        }
        if (reads != 1 || !plain) continue;
        bool need_tee =
            consumers.size() > 1 || (*dvr)->is_workflow_output;
        // No other consumer may depend on the dataset's partition layout.
        if (need_tee) {
          bool layout_dependent = false;
          for (const std::string& other : consumers) {
            if (other == jc_id) continue;
            auto jo = plan.GetJob(other);
            if (!jo.ok()) continue;
            for (const Branch& ob : (*jo)->branches) {
              for (const BranchInput& oin : ob.inputs) {
                if (oin.dataset_id == dataset &&
                    (oin.aligned || !oin.prune_partitions.empty())) {
                  layout_dependent = true;
                }
              }
            }
          }
          if (layout_dependent) continue;
        }
        Application app;
        app.transform_name = name();
        app.description = StrFormat("inter-pack map-only %s into %s%s",
                                    jp_id.c_str(), jc_id.c_str(),
                                    need_tee ? " (tee)" : "");
        app.renames[jp_id] = jp_id + "+" + jc_id;
        app.renames[jc_id] = jp_id + "+" + jc_id;
        app.apply = [jp_id, jc_id, dataset, need_tee](const Plan& p) {
          return PackProducerIntoConsumer(p, jp_id, jc_id, dataset, need_tee);
        };
        apps.push_back(std::move(app));
      }
    }

    if (!jp.map_only()) {
      // Map-only consumer packs into the producer's reduce side.
      for (const std::string& jc_id : consumers) {
        if (!InUnit(unit_jobs, jc_id) || jc_id == jp_id) continue;
        auto jcr = plan.GetJob(jc_id);
        if (!jcr.ok()) continue;
        const JobVertex& jc = **jcr;
        if (jc.branches.size() != 1) continue;
        const Branch& bc = jc.branches[0];
        if (!bc.map_only()) continue;
        if (bc.inputs.size() != 1 || bc.inputs[0].dataset_id != dataset) {
          continue;
        }
        if (!bc.inputs[0].prune_partitions.empty()) continue;
        // Grouped consumer stages must rely only on the ordering the
        // producer's reduce output stream already provides: the merge
        // re-sort must have been an ordering no-op, i.e. the intermediate
        // dataset's per-partition order must begin with the consumer's
        // merge sort fields.
        if (bc.merge_mode()) {
          if (!bc.inputs[0].aligned) continue;
          const std::vector<std::string>& provided =
              (*dvr)->layout.order_fields;
          if (!IsPrefix(bc.merge_sort_fields, provided)) continue;
        } else {
          // Plain map-only consumer: any read works (rows stream through).
          bool grouped = false;
          for (const Stage& s : bc.inputs[0].map_stages) {
            if (s.kind == Stage::Kind::kReduce) grouped = true;
          }
          if (grouped && !bc.inputs[0].aligned) continue;
        }
        bool need_tee =
            consumers.size() > 1 || (*dvr)->is_workflow_output;
        if (need_tee && consumers.size() > 1) {
          bool layout_dependent = false;
          for (const std::string& other : consumers) {
            if (other == jc_id) continue;
            auto jo = plan.GetJob(other);
            if (!jo.ok()) continue;
            for (const Branch& ob : (*jo)->branches) {
              for (const BranchInput& oin : ob.inputs) {
                if (oin.dataset_id == dataset &&
                    (oin.aligned || !oin.prune_partitions.empty())) {
                  layout_dependent = true;
                }
              }
            }
          }
          if (layout_dependent) continue;
        }
        Application app;
        app.transform_name = name();
        app.description = StrFormat("inter-pack map-only %s into %s%s",
                                    jc_id.c_str(), jp_id.c_str(),
                                    need_tee ? " (tee)" : "");
        app.renames[jp_id] = jp_id + "+" + jc_id;
        app.renames[jc_id] = jp_id + "+" + jc_id;
        app.apply = [jp_id, jc_id, dataset, need_tee](const Plan& p) {
          return PackConsumerIntoProducer(p, jp_id, jc_id, dataset, need_tee);
        };
        apps.push_back(std::move(app));
      }
    }
  }
  return apps;
}

}  // namespace stubby

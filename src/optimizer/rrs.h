// Recursive Random Search (Ye & Kalyanaraman, SIGMETRICS 2003 [24]): the
// black-box optimizer Stubby uses over the high-dimensional configuration
// space (Section 4.2). RRS alternates an exploration phase (uniform random
// sampling to find a promising region) with an exploitation phase (sampling
// in a ball around the incumbent that re-centers on improvement and shrinks
// otherwise), restarting exploration when the ball bottoms out.
//
// The search is batch-structured: every round's sample points are drawn
// up front from the seeded RNG, the whole round is handed to the evaluator
// at once, and the selection rule is applied to the returned values in
// point order. The trajectory is therefore a pure function of the seed and
// the values — an evaluator that computes the batch in parallel (but
// returns bit-identical values in order) reproduces the exact same search
// as a serial one, which is how the unit optimizer parallelizes point
// costing without perturbing results.

#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace stubby {

/// RRS tuning knobs.
struct RrsOptions {
  /// Total evaluation budget.
  int budget = 100;
  /// Samples per exploration round.
  int explore_samples = 10;
  /// Samples per exploitation step.
  int exploit_samples = 5;
  /// Initial exploitation ball radius (unit-cube coordinates).
  double init_radius = 0.25;
  /// Radius multiplier on a failed exploitation step.
  double shrink = 0.55;
  /// Exploitation stops (and exploration restarts) below this radius.
  double min_radius = 0.02;
};

/// Evaluates one round of points; returns one value per point, in order.
using RrsBatchEval = std::function<std::vector<double>(
    const std::vector<std::vector<double>>&)>;

/// Minimizes a black-box function over [0,1]^d.
class RecursiveRandomSearch {
 public:
  RecursiveRandomSearch(RrsOptions options, uint64_t seed)
      : options_(options), rng_(seed) {}

  /// Runs the search with a point-at-a-time evaluator (evaluated serially,
  /// in order — a thin adapter over MinimizeBatches). `seeds` are evaluated
  /// first (e.g. the current and the rule-of-thumb configurations) and
  /// count against the budget. Returns the best point and its value.
  std::pair<std::vector<double>, double> Minimize(
      size_t dims, const std::function<double(const std::vector<double>&)>& eval,
      const std::vector<std::vector<double>>& seeds);

  /// Runs the search with a batch evaluator. Rounds: the seed batch, then
  /// alternating exploration batches (uniform points; the first strict
  /// minimum becomes the incumbent) and exploitation batches (points in a
  /// ball around the incumbent; the scan re-centers greedily on every
  /// improving value, and the radius shrinks when none improves).
  std::pair<std::vector<double>, double> MinimizeBatches(
      size_t dims, const RrsBatchEval& eval,
      const std::vector<std::vector<double>>& seeds);

 private:
  RrsOptions options_;
  Rng rng_;
};

}  // namespace stubby

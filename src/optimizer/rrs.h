// Recursive Random Search (Ye & Kalyanaraman, SIGMETRICS 2003 [24]): the
// black-box optimizer Stubby uses over the high-dimensional configuration
// space (Section 4.2). RRS alternates an exploration phase (uniform random
// sampling to find a promising region) with an exploitation phase (sampling
// in a ball around the incumbent that re-centers on improvement and shrinks
// otherwise), restarting exploration when the ball bottoms out.

#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace stubby {

/// RRS tuning knobs.
struct RrsOptions {
  /// Total evaluation budget.
  int budget = 100;
  /// Samples per exploration round.
  int explore_samples = 10;
  /// Samples per exploitation step.
  int exploit_samples = 5;
  /// Initial exploitation ball radius (unit-cube coordinates).
  double init_radius = 0.25;
  /// Radius multiplier on a failed exploitation step.
  double shrink = 0.55;
  /// Exploitation stops (and exploration restarts) below this radius.
  double min_radius = 0.02;
};

/// Minimizes a black-box function over [0,1]^d.
class RecursiveRandomSearch {
 public:
  RecursiveRandomSearch(RrsOptions options, uint64_t seed)
      : options_(options), rng_(seed) {}

  /// Runs the search. `seeds` are evaluated first (e.g. the current and the
  /// rule-of-thumb configurations) and count against the budget. Returns
  /// the best point and its value.
  std::pair<std::vector<double>, double> Minimize(
      size_t dims, const std::function<double(const std::vector<double>&)>& eval,
      const std::vector<std::vector<double>>& seeds);

 private:
  RrsOptions options_;
  Rng rng_;
};

}  // namespace stubby

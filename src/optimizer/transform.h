// Transformation framework (Section 2.3): a transformation is defined by
// preconditions checked on a plan P- and postconditions established on the
// produced plan P+, such that P- and P+ compute the same result. Each
// concrete transformation enumerates its valid applications within an
// optimization unit; the search applies them to build the unit's subplan
// space. New transformations extend the optimizer by subclassing
// Transformation, in the spirit of extensible optimizers like EXODUS.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "workflow/plan.h"

namespace stubby {

/// One valid application of a transformation to a specific site in a plan.
struct Application {
  std::string transform_name;
  std::string description;

  /// Produces the transformed plan P+ from P-. Pure: P- is untouched.
  std::function<Result<Plan>(const Plan&)> apply;

  /// Job-id changes caused by the application (old id -> new id), used by
  /// the search to track optimization-unit membership across packing.
  std::map<std::string, std::string> renames;
};

/// Base class of all plan-to-plan transformations.
class Transformation {
 public:
  virtual ~Transformation() = default;

  virtual std::string name() const = 0;

  /// Enumerates applications whose preconditions hold on `plan`, restricted
  /// to sites involving the jobs in `unit_jobs`.
  virtual std::vector<Application> FindApplications(
      const Plan& plan, const std::vector<std::string>& unit_jobs) const = 0;
};

/// Structural fingerprint of a plan (configuration excluded) for
/// de-duplicating subplans during enumeration.
std::string PlanSignature(const Plan& plan);

/// Appends a tee marker materializing `dataset` after the last stage of
/// `stages`; inserts an identity stage when the pipeline is empty or its
/// last stage already tees elsewhere. `schema_at_end` is the row type at
/// the end of the pipeline.
void AttachTee(std::vector<Stage>* stages, const Schema& schema_at_end,
               const std::string& dataset);

}  // namespace stubby

#include "optimizer/rrs.h"

#include <algorithm>
#include <limits>

namespace stubby {

std::pair<std::vector<double>, double> RecursiveRandomSearch::Minimize(
    size_t dims,
    const std::function<double(const std::vector<double>&)>& eval,
    const std::vector<std::vector<double>>& seeds) {
  return MinimizeBatches(
      dims,
      [&](const std::vector<std::vector<double>>& points) {
        std::vector<double> values;
        values.reserve(points.size());
        for (const auto& p : points) values.push_back(eval(p));
        return values;
      },
      seeds);
}

std::pair<std::vector<double>, double>
RecursiveRandomSearch::MinimizeBatches(
    size_t dims, const RrsBatchEval& eval,
    const std::vector<std::vector<double>>& seeds) {
  std::vector<double> best_point(dims, 0.5);
  double best_value = std::numeric_limits<double>::infinity();
  int budget_left = options_.budget;

  auto consider = [&](const std::vector<double>& p, double v) {
    if (v < best_value) {
      best_value = v;
      best_point = p;
    }
  };
  auto run_batch = [&](const std::vector<std::vector<double>>& points) {
    budget_left -= static_cast<int>(points.size());
    return eval(points);
  };

  // Seed batch: the provided starting points, budget permitting.
  std::vector<std::vector<double>> batch;
  for (const auto& s : seeds) {
    if (s.size() == dims &&
        static_cast<int>(batch.size()) < budget_left) {
      batch.push_back(s);
    }
  }
  if (!batch.empty()) {
    std::vector<double> values = run_batch(batch);
    for (size_t i = 0; i < batch.size(); ++i) consider(batch[i], values[i]);
  }
  if (dims == 0) return {best_point, best_value};

  auto random_point = [&]() {
    std::vector<double> p(dims);
    for (auto& x : p) x = rng_.NextDouble();
    return p;
  };
  auto point_near = [&](const std::vector<double>& center, double radius) {
    std::vector<double> p(dims);
    for (size_t i = 0; i < dims; ++i) {
      p[i] = std::clamp(center[i] + rng_.NextDouble(-radius, radius), 0.0,
                        1.0);
    }
    return p;
  };

  while (budget_left > 0) {
    // Explore: one batch of uniform samples; the first strict minimum is
    // the round's incumbent.
    int k = std::clamp(options_.explore_samples, 1, budget_left);
    batch.clear();
    for (int i = 0; i < k; ++i) batch.push_back(random_point());
    std::vector<double> values = run_batch(batch);
    size_t inc = 0;
    for (size_t i = 1; i < batch.size(); ++i) {
      if (values[i] < values[inc]) inc = i;
    }
    std::vector<double> incumbent = batch[inc];
    double incumbent_value = values[inc];
    consider(incumbent, incumbent_value);

    // Exploit: batches in a shrinking ball around the incumbent. The scan
    // re-centers greedily on every improving value (points later in the
    // batch were drawn around the old center but remain valid samples);
    // the next batch is drawn around the final incumbent.
    double radius = options_.init_radius;
    while (radius > options_.min_radius && budget_left > 0 &&
           options_.exploit_samples > 0) {
      int k2 = std::min(options_.exploit_samples, budget_left);
      batch.clear();
      for (int i = 0; i < k2; ++i) batch.push_back(point_near(incumbent, radius));
      values = run_batch(batch);
      bool improved = false;
      for (size_t i = 0; i < batch.size(); ++i) {
        if (values[i] < incumbent_value) {
          incumbent = batch[i];
          incumbent_value = values[i];
          improved = true;
        }
      }
      if (!improved) radius *= options_.shrink;
    }
    consider(incumbent, incumbent_value);
  }
  return {best_point, best_value};
}

}  // namespace stubby

#include "optimizer/rrs.h"

#include <algorithm>
#include <limits>

namespace stubby {

std::pair<std::vector<double>, double> RecursiveRandomSearch::Minimize(
    size_t dims,
    const std::function<double(const std::vector<double>&)>& eval,
    const std::vector<std::vector<double>>& seeds) {
  std::vector<double> best_point(dims, 0.5);
  double best_value = std::numeric_limits<double>::infinity();
  int evals = 0;

  auto consider = [&](const std::vector<double>& p) {
    double v = eval(p);
    ++evals;
    if (v < best_value) {
      best_value = v;
      best_point = p;
      return true;
    }
    return false;
  };

  for (const auto& s : seeds) {
    if (s.size() == dims && evals < options_.budget) consider(s);
  }
  if (dims == 0) return {best_point, best_value};

  auto random_point = [&]() {
    std::vector<double> p(dims);
    for (auto& x : p) x = rng_.NextDouble();
    return p;
  };
  auto point_near = [&](const std::vector<double>& center, double radius) {
    std::vector<double> p(dims);
    for (size_t i = 0; i < dims; ++i) {
      p[i] = std::clamp(center[i] + rng_.NextDouble(-radius, radius), 0.0,
                        1.0);
    }
    return p;
  };

  while (evals < options_.budget) {
    // Explore: uniform sampling to find a promising region.
    std::vector<double> incumbent = random_point();
    double incumbent_value = eval(incumbent);
    ++evals;
    for (int i = 1; i < options_.explore_samples && evals < options_.budget;
         ++i) {
      std::vector<double> p = random_point();
      double v = eval(p);
      ++evals;
      if (v < incumbent_value) {
        incumbent = std::move(p);
        incumbent_value = v;
      }
    }
    if (incumbent_value < best_value) {
      best_value = incumbent_value;
      best_point = incumbent;
    }

    // Exploit: recursive sampling in a shrinking/re-centering ball.
    double radius = options_.init_radius;
    while (radius > options_.min_radius && evals < options_.budget) {
      bool improved = false;
      for (int i = 0; i < options_.exploit_samples && evals < options_.budget;
           ++i) {
        std::vector<double> p = point_near(incumbent, radius);
        double v = eval(p);
        ++evals;
        if (v < incumbent_value) {
          incumbent = std::move(p);
          incumbent_value = v;
          improved = true;
          break;  // re-center immediately
        }
      }
      if (!improved) radius *= options_.shrink;
    }
    if (incumbent_value < best_value) {
      best_value = incumbent_value;
      best_point = incumbent;
    }
  }
  return {best_point, best_value};
}

}  // namespace stubby

#include "optimizer/horizontal.h"

#include <algorithm>

#include "common/strings.h"
#include "workflow/subgraph.h"

namespace stubby {

namespace {

Result<Plan> PackHorizontally(const Plan& plan_in, const std::string& a_id,
                              const std::string& b_id) {
  Plan np = plan_in;
  STUBBY_ASSIGN_OR_RETURN(const JobVertex* ap, np.GetJob(a_id));
  STUBBY_ASSIGN_OR_RETURN(const JobVertex* bp, np.GetJob(b_id));
  JobVertex a = *ap;
  const JobVertex b = *bp;

  JobVertex merged;
  merged.id = a_id + "|" + b_id;
  merged.branches = a.branches;
  merged.branches.insert(merged.branches.end(), b.branches.begin(),
                         b.branches.end());
  // The packed job runs every pipeline with one shared configuration — the
  // dependence the paper calls out; start from the first job's settings
  // with enough reduce tasks for both.
  merged.config = a.config;
  merged.config.num_reduce_tasks =
      std::max(a.config.num_reduce_tasks, b.config.num_reduce_tasks);
  merged.conditions.partition_frozen =
      a.conditions.partition_frozen || b.conditions.partition_frozen;
  if (a.conditions.num_reduce_fixed) {
    merged.conditions.num_reduce_fixed = a.conditions.num_reduce_fixed;
  }
  if (b.conditions.num_reduce_fixed) {
    if (merged.conditions.num_reduce_fixed &&
        *merged.conditions.num_reduce_fixed !=
            *b.conditions.num_reduce_fixed) {
      return Status::FailedPrecondition(
          "conflicting fixed reduce-task counts");
    }
    merged.conditions.num_reduce_fixed = b.conditions.num_reduce_fixed;
  }

  np.RemoveJob(a_id);
  np.RemoveJob(b_id);
  STUBBY_RETURN_NOT_OK(np.AddJob(std::move(merged)));
  STUBBY_RETURN_NOT_OK(np.Validate());
  return np;
}

}  // namespace

std::vector<Application> HorizontalPacking::FindApplications(
    const Plan& plan, const std::vector<std::string>& unit_jobs) const {
  std::vector<Application> apps;
  for (size_t i = 0; i < unit_jobs.size(); ++i) {
    for (size_t j = i + 1; j < unit_jobs.size(); ++j) {
      const std::string& a = unit_jobs[i];
      const std::string& b = unit_jobs[j];
      auto ar = plan.GetJob(a);
      auto br = plan.GetJob(b);
      if (!ar.ok() || !br.ok()) continue;
      if (!ConcurrentlyRunnable(plan, a, b)) continue;

      // Jobs whose range partitioning is resolved from a sampler dataset
      // would entangle the packed job's reduce count with runtime state;
      // leave them unpacked.
      auto uses_sampler = [](const JobVertex& job) {
        for (const Branch& br2 : job.branches) {
          if (!br2.partition.split_points_from.empty()) return true;
        }
        return false;
      };
      if (uses_sampler(**ar) || uses_sampler(**br)) continue;

      bool shared = !SharedInputs(plan, a, b).empty();
      if (!shared && !extended_) continue;

      Application app;
      app.transform_name = name();
      app.description =
          StrFormat("horizontal-pack %s and %s%s", a.c_str(), b.c_str(),
                    shared ? " (shared scan)" : " (extended)");
      app.renames[a] = a + "|" + b;
      app.renames[b] = a + "|" + b;
      app.apply = [a, b](const Plan& p) { return PackHorizontally(p, a, b); };
      apps.push_back(std::move(app));
    }
  }
  return apps;
}

}  // namespace stubby

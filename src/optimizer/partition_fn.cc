#include "optimizer/partition_fn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/strings.h"

namespace stubby {

namespace {

constexpr double kBoundaryEps = 1e-9;

/// Candidate pruning site: a consumer input reading the job's output with a
/// filter annotation on the partition field.
struct PruneSite {
  std::string consumer_id;
  size_t branch_index;
  size_t input_index;
  double lo;
  double hi;
};

}  // namespace

std::vector<Application> PartitionFunctionTransform::FindApplications(
    const Plan& plan, const std::vector<std::string>& unit_jobs) const {
  std::vector<Application> apps;

  // Partition pruning against already-range-partitioned datasets (typically
  // base inputs whose loader recorded range split points, e.g. uservisits
  // partitioned by date): no partition function changes, just set the
  // consumer's input descriptor to the partitions its filter needs.
  for (const std::string& jid : unit_jobs) {
    auto jr = plan.GetJob(jid);
    if (!jr.ok()) continue;
    const JobVertex& job = **jr;
    for (size_t bi = 0; bi < job.branches.size(); ++bi) {
      const Branch& b = job.branches[bi];
      if (!b.annotations.filter) continue;
      const FilterAnnotation& filter = *b.annotations.filter;
      for (size_t ii = 0; ii < b.inputs.size(); ++ii) {
        const BranchInput& in = b.inputs[ii];
        if (in.aligned || !in.prune_partitions.empty()) continue;
        auto dvr = plan.GetDataset(in.dataset_id);
        if (!dvr.ok()) continue;
        const DatasetAnnotation& ann = (*dvr)->annotation;
        if (!ann.layout || !ann.layout->partitioning) continue;
        const PartitionSpec& ps = *ann.layout->partitioning;
        if (ps.type != PartitionType::kRange || ps.split_points.empty() ||
            ps.partition_fields.size() != 1 ||
            ps.partition_fields[0] != filter.field) {
          continue;
        }
        std::vector<int> selected;
        int total = static_cast<int>(ps.split_points.size()) + 1;
        for (int p = 0; p < total; ++p) {
          double p_lo = (p == 0)
                            ? -std::numeric_limits<double>::infinity()
                            : ps.split_points[static_cast<size_t>(p - 1)][0]
                                  .AsDouble();
          double p_hi = (p == total - 1)
                            ? std::numeric_limits<double>::infinity()
                            : ps.split_points[static_cast<size_t>(p)][0]
                                  .AsDouble();
          if (p_lo < filter.hi && p_hi > filter.lo) selected.push_back(p);
        }
        if (selected.empty() ||
            static_cast<int>(selected.size()) >= total) {
          continue;  // nothing pruned
        }
        Application app;
        app.transform_name = name();
        app.description = StrFormat(
            "prune %s's read of %s to %zu/%d partitions (filter %s)",
            jid.c_str(), in.dataset_id.c_str(), selected.size(), total,
            filter.ToString().c_str());
        double fraction =
            static_cast<double>(selected.size()) / static_cast<double>(total);
        app.apply = [jid, bi, ii, selected,
                     fraction](const Plan& plan_in) -> Result<Plan> {
          Plan np = plan_in;
          STUBBY_ASSIGN_OR_RETURN(JobVertex * j2, np.GetMutableJob(jid));
          BranchInput& input = j2->branches[bi].inputs[ii];
          input.prune_partitions = selected;
          input.prune_fraction = fraction;
          STUBBY_RETURN_NOT_OK(np.Validate());
          return np;
        };
        apps.push_back(std::move(app));
      }
    }
  }

  // Reverting range partitioning to the default hash partitioning (on the
  // branch's grouping key) un-pins the reduce-task count — useful when a
  // later packing decision values the configuration freedom more than the
  // balanced ranges.
  for (const std::string& jid : unit_jobs) {
    auto jr = plan.GetJob(jid);
    if (!jr.ok()) continue;
    const JobVertex& job = **jr;
    if (job.conditions.partition_frozen) continue;
    for (size_t bi = 0; bi < job.branches.size(); ++bi) {
      const Branch& b = job.branches[bi];
      if (b.map_only() || b.partition.type != PartitionType::kRange ||
          b.partition.split_points.empty()) {
        continue;
      }
      // Consumers pruning on the range layout would be invalidated.
      bool prune_dependent = false;
      for (const std::string& cid : plan.ConsumersOf(b.output_dataset)) {
        auto cr = plan.GetJob(cid);
        if (!cr.ok()) continue;
        for (const Branch& cb : (*cr)->branches) {
          for (const BranchInput& cin : cb.inputs) {
            if (cin.dataset_id == b.output_dataset &&
                (!cin.prune_partitions.empty() || cin.aligned)) {
              prune_dependent = true;
            }
          }
        }
      }
      if (prune_dependent) continue;
      Application app;
      app.transform_name = name();
      app.description =
          StrFormat("hash-partition %s (revert range)", jid.c_str());
      app.apply = [jid, bi](const Plan& plan_in) -> Result<Plan> {
        Plan np = plan_in;
        STUBBY_ASSIGN_OR_RETURN(JobVertex * j2, np.GetMutableJob(jid));
        Branch& b2 = j2->branches[bi];
        b2.partition.type = PartitionType::kHash;
        b2.partition.partition_fields = b2.GroupFields();
        b2.partition.split_points.clear();
        auto dv = np.GetMutableDataset(b2.output_dataset);
        if (dv.ok()) {
          (*dv)->layout = DeriveOutputLayout(b2, j2->config, (*dv)->schema);
          (*dv)->annotation.layout = (*dv)->layout;
          (*dv)->annotation.num_partitions.reset();
        }
        STUBBY_RETURN_NOT_OK(np.Validate());
        return np;
      };
      apps.push_back(std::move(app));
    }
  }

  for (const std::string& jid : unit_jobs) {
    auto jr = plan.GetJob(jid);
    if (!jr.ok()) continue;
    const JobVertex& job = **jr;
    if (job.branches.size() != 1) continue;
    const Branch& b = job.branches[0];
    if (b.map_only()) continue;
    if (job.conditions.partition_frozen) continue;
    if (b.partition.type != PartitionType::kHash) continue;
    if (b.partition.partition_fields.empty()) continue;
    if (!b.annotations.profile) continue;

    const std::string field = b.partition.partition_fields[0];
    const KeyHistogram* hist = b.annotations.profile->FindHistogram(field);
    if (hist == nullptr || hist->max <= hist->min) continue;

    // Filter annotations of consumers reading this job's output enable
    // pruning when the split points respect their boundaries.
    std::vector<PruneSite> sites;
    std::vector<double> boundaries;
    for (const std::string& cid : plan.ConsumersOf(b.output_dataset)) {
      auto cr = plan.GetJob(cid);
      if (!cr.ok()) continue;
      const JobVertex& cj = **cr;
      for (size_t bi = 0; bi < cj.branches.size(); ++bi) {
        const Branch& cb = cj.branches[bi];
        if (!cb.annotations.filter || cb.annotations.filter->field != field) {
          continue;
        }
        for (size_t ii = 0; ii < cb.inputs.size(); ++ii) {
          const BranchInput& in = cb.inputs[ii];
          if (in.dataset_id != b.output_dataset) continue;
          if (in.aligned || !in.prune_partitions.empty()) continue;
          sites.push_back(PruneSite{cid, bi, ii, cb.annotations.filter->lo,
                                    cb.annotations.filter->hi});
          boundaries.push_back(cb.annotations.filter->lo);
          boundaries.push_back(cb.annotations.filter->hi);
        }
      }
    }

    // Split points: consumer filter boundaries first, padded with quantiles
    // of the key distribution. Range partitioning pins the reduce-task
    // count to splits+1, so enumerate both a one-wave and a two-wave
    // variant (the job's current setting as a floor) and let the cost-based
    // search decide.
    const int slots = plan.cluster().total_reduce_slots();
    std::set<int> targets;
    if (job.conditions.num_reduce_fixed) {
      // A pinned reduce-task count takes precedence over range split points
      // in EffectiveReduceTasks, so only a spec with at most that many
      // partitions can execute.
      targets = {*job.conditions.num_reduce_fixed};
    } else {
      targets = {std::max(job.EffectiveReduceTasks(), slots),
                 std::max(job.EffectiveReduceTasks(), 2 * slots)};
    }
    for (int R : targets) {
    std::vector<double> splits;
    for (double v : boundaries) {
      if (v > hist->min + kBoundaryEps && v < hist->max - kBoundaryEps) {
        splits.push_back(v);
      }
    }
    int want = std::max(static_cast<int>(splits.size()), R - 1);
    for (int k = 1; k < R && static_cast<int>(splits.size()) < want; ++k) {
      double q = hist->Quantile(static_cast<double>(k) / R);
      bool close = std::any_of(splits.begin(), splits.end(), [&](double s) {
        return std::fabs(s - q) <
               (hist->max - hist->min) * 1e-3;
      });
      if (!close && q > hist->min && q < hist->max) splits.push_back(q);
    }
    std::sort(splits.begin(), splits.end());
    splits.erase(std::unique(splits.begin(), splits.end()), splits.end());
    if (splits.empty()) continue;
    // Consumer filter boundaries can push the split count past a pinned
    // reduce-task count; such a spec could never execute.
    if (job.conditions.num_reduce_fixed &&
        static_cast<int>(splits.size()) + 1 >
            *job.conditions.num_reduce_fixed) {
      continue;
    }

    Application app;
    app.transform_name = name();
    app.description = StrFormat(
        "range-partition %s on %s (%zu splits%s)", jid.c_str(), field.c_str(),
        splits.size(), sites.empty() ? "" : ", enables pruning");
    KeyHistogram hist_copy = *hist;
    app.apply = [jid, field, splits, sites,
                 hist_copy](const Plan& plan_in) -> Result<Plan> {
      Plan np = plan_in;
      STUBBY_ASSIGN_OR_RETURN(JobVertex * job2, np.GetMutableJob(jid));
      Branch& b2 = job2->branches[0];
      b2.partition.type = PartitionType::kRange;
      b2.partition.partition_fields = {field};
      b2.partition.split_points.clear();
      for (double s : splits) b2.partition.split_points.push_back(Row{s});

      STUBBY_ASSIGN_OR_RETURN(DatasetVertex * dv,
                              np.GetMutableDataset(b2.output_dataset));
      dv->layout = DeriveOutputLayout(b2, job2->config, dv->schema);
      dv->annotation.layout = dv->layout;
      dv->annotation.num_partitions =
          static_cast<int>(splits.size()) + 1;

      // Point each filtered consumer at the relevant partitions only.
      for (const PruneSite& site : sites) {
        STUBBY_ASSIGN_OR_RETURN(JobVertex * cj,
                                np.GetMutableJob(site.consumer_id));
        BranchInput& in = cj->branches[site.branch_index]
                              .inputs[site.input_index];
        in.prune_partitions.clear();
        // Partition p covers [split[p-1], split[p]).
        for (size_t p = 0; p <= splits.size(); ++p) {
          double p_lo = (p == 0) ? hist_copy.min : splits[p - 1];
          double p_hi = (p == splits.size())
                            ? hist_copy.max + 1.0
                            : splits[p];
          if (p_lo < site.hi && p_hi > site.lo) {
            in.prune_partitions.push_back(static_cast<int>(p));
          }
        }
        in.prune_fraction =
            hist_copy.FractionInRange(site.lo, site.hi);
        if (in.prune_fraction <= 0.0) in.prune_fraction = 0.01;
      }
      STUBBY_RETURN_NOT_OK(np.Validate());
      return np;
    };
    apps.push_back(std::move(app));
    }  // for targets
  }
  return apps;
}

}  // namespace stubby

// Partition function transformation (Section 3.4): changes how a job's map
// output is partitioned — here, switching hash partitioning to range
// partitioning with split points chosen from the profiled key distribution.
// Benefits: (i) skew reduction across reduce tasks, and (ii) partition
// pruning for consumers whose filter annotations restrict the key range
// (split points are aligned to the filter boundaries, and the consumer's
// input descriptor is set to read only the relevant partitions — Figure 7).

#pragma once

#include "optimizer/transform.h"

namespace stubby {

/// Section 3.4.
class PartitionFunctionTransform : public Transformation {
 public:
  std::string name() const override { return "partition-function"; }
  std::vector<Application> FindApplications(
      const Plan& plan,
      const std::vector<std::string>& unit_jobs) const override;
};

}  // namespace stubby

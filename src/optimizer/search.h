// Search within an optimization unit (Section 4.2): Stubby exhaustively
// applies all combinations of the (structural) transformations in the
// active group to generate the unit's subplans p1..pn, invokes RRS on each
// subplan to find its best job configurations and estimated cost, and
// retains the subplan with the overall lowest cost.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "cost/whatif.h"
#include "optimizer/rrs.h"
#include "optimizer/transform.h"
#include "optimizer/unit.h"
#include "reuse/result_store.h"

namespace stubby {

class ThreadPool;
class ProbeStore;  // reuse/probe_cache.h

/// Store context for reuse-aware candidate pricing. When `store` and `dfs`
/// are both set, the unit search matches every configured candidate
/// against the catalog (read-only Peek probes — store state never changes
/// during a search) and additionally prices the candidate's rewritten
/// form through the same engine, so the unit minimum is taken over
/// reuse-aware costs instead of reuse-blind ones. `seeds` pre-resolves
/// lineage keys — base-input content keys plus the identities of vertices
/// materialized by earlier units — so probes never re-digest base rows and
/// chained rewrites across units resolve.
///
/// `probe_cache` (optional) is the Optimize-call-wide signature memo: the
/// search pre-seeds it with each unit's base-plan lineage, gives every
/// candidate task a private overlay over the frozen memo, and merges the
/// overlays in candidate order — so JobReuseKey digests run once per
/// distinct job signature instead of once per RRS-configured candidate,
/// with plans, costs, and store probes bit-identical either way.
struct ReuseSearchContext {
  ResultStore* store = nullptr;
  const Dfs* dfs = nullptr;
  const std::map<std::string, CostKey>* seeds = nullptr;
  ProbeStore* probe_cache = nullptr;

  bool active() const { return store != nullptr && dfs != nullptr; }
};

/// Knobs of the in-unit search.
struct UnitSearchOptions {
  /// Caps on the exhaustive structural enumeration (defensive; real units
  /// yield a handful of subplans, cf. Figure 10).
  int max_subplans = 64;
  int max_depth = 6;

  /// Configuration-search settings.
  bool enable_configuration = true;
  RrsOptions rrs;
  uint64_t seed = 17;
};

/// Outcome of optimizing one unit.
struct UnitResult {
  Plan plan;
  double cost = 0.0;
  bool fallback = false;  ///< costed with the job-count fallback model
  /// Composed job-id renames caused by the chosen subplan's packing.
  std::map<std::string, std::string> renames;
  /// Structural transformations applied in the chosen subplan.
  std::vector<std::string> applied;
  int subplans_enumerated = 0;

  /// Reuse-aware search outcome: probe/priced totals over all candidates,
  /// plus the winner's hit counters when a rewritten candidate won.
  ReuseStats reuse;
  bool reuse_won = false;
  /// Lineage identity (vertex id -> store key) of vertices the winning
  /// candidate materialized; empty unless `reuse_won`.
  std::map<std::string, CostKey> materialized_lineage;
};

/// One enumerated subplan with its best configuration and cost (exposed for
/// the Figure 10 / Figure 14 style drill-downs).
struct SubplanCandidate {
  Plan plan;
  double cost = 0.0;
  bool fallback = false;  ///< costed with the job-count fallback model
  std::vector<std::string> applied;
  std::map<std::string, std::string> renames;

  /// True when this candidate is the store-rewritten form of its subplan
  /// (it priced cheaper than recomputing); `reuse` then carries the
  /// planning-rewrite counters and `materialized_lineage` the identities
  /// of the snapshot scans the plan gained.
  bool reuse_rewritten = false;
  ReuseStats reuse;
  std::map<std::string, CostKey> materialized_lineage;
};

/// Enumerates and costs a unit's subplan space.
///
/// With a pool, subplan candidates are costed as parallel tasks, and each
/// RRS round's points in parallel blocks. Every task works against a
/// private engine whose cache is a CostCacheOverlay over the (frozen)
/// shared store and whose instrumentation is a private delta; overlays and
/// deltas merge serially in task order once the batch completes. The same
/// protocol runs at every thread count — including one — so plans, costs,
/// RRS trajectories, and instrumentation counters are bit-identical no
/// matter how many threads execute the tasks.
class UnitOptimizer {
 public:
  UnitOptimizer(std::vector<std::shared_ptr<Transformation>> transforms,
                const WhatIfEngine* whatif, UnitSearchOptions options,
                ThreadPool* pool = nullptr, ReuseSearchContext reuse = {})
      : transforms_(std::move(transforms)),
        whatif_(whatif),
        options_(options),
        pool_(pool),
        reuse_(reuse) {}

  /// Optimizes `unit` within `plan`; returns the plan with the best subplan
  /// and configurations applied.
  Result<UnitResult> Optimize(const Plan& plan,
                              const OptimizationUnit& unit) const;

  /// Enumerates all subplans of the unit with their RRS-optimized costs
  /// (most expensive entry point; used by benches and deep-dive examples).
  /// With an active reuse context, each candidate is additionally matched
  /// against the store after configuration and replaced by its rewritten
  /// form when that prices cheaper; `search_totals` (optional) accumulates
  /// the probe/priced counters across all candidates.
  Result<std::vector<SubplanCandidate>> EnumerateSubplans(
      const Plan& plan, const OptimizationUnit& unit,
      ReuseStats* search_totals = nullptr) const;

 private:
  /// Outcome of the configuration pass over one subplan.
  struct ConfiguredPlan {
    Plan plan;
    double cost = 0.0;
    bool fallback = false;
  };

  /// RRS over the configurations of the unit's jobs in `plan`; returns the
  /// plan with the best configurations applied, its cost, and whether that
  /// cost came from the fallback model. `engine` is the candidate-private
  /// engine to cost through (its cache/instrumentation may themselves be a
  /// task overlay and delta). `content_digests` (optional out) receives
  /// JobContentDigest for every job of the *returned* plan — the digests
  /// the costing pass already holds, handed to the reuse probe so its memo
  /// keys need no second content walk.
  Result<ConfiguredPlan> OptimizeConfigurations(
      const WhatIfEngine* engine, const Plan& plan,
      const std::vector<std::string>& unit_jobs,
      std::map<std::string, CostDigest>* content_digests = nullptr) const;

  std::vector<std::shared_ptr<Transformation>> transforms_;
  const WhatIfEngine* whatif_;
  UnitSearchOptions options_;
  ThreadPool* pool_ = nullptr;
  ReuseSearchContext reuse_;
};

}  // namespace stubby

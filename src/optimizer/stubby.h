// StubbyOptimizer: the public entry point — a cost-based, transformation-
// based optimizer for annotated MapReduce workflow plans (the paper's
// Section 4 in full). The optimization process is two greedy phases: the
// Vertical group (intra- and inter-job vertical packing, plus partition
// function and configuration transformations) is applied across all
// dynamically generated optimization units in topological order, then the
// Horizontal group (horizontal packing, plus partition function and
// configuration) repeats the traversal. The result is an equivalent plan
// with minimum estimated execution cost subject to the given annotations.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "cost/cost_cache.h"
#include "cost/whatif.h"
#include "optimizer/search.h"
#include "reuse/result_store.h"
#include "workflow/plan.h"

namespace stubby {

/// Optimizer switches — each corresponds to a subspace of the plan space.
struct StubbyOptions {
  bool enable_intra_vertical = true;
  bool enable_inter_vertical = true;
  bool enable_horizontal = true;
  /// Extended horizontal packing (concurrently-runnable jobs with disjoint
  /// inputs), Section 3.3 extensions.
  bool extended_horizontal = true;
  bool enable_partition_function = true;
  bool enable_configuration = true;

  /// Ablation: apply the Horizontal group before the Vertical group
  /// (the paper argues Vertical-first is the right order, Section 4).
  bool flip_phase_order = false;

  /// Costing cache (Section 6's cost reuse): memoize whole-plan estimates
  /// and per-job dataflow predictions across phases and units. Transparent:
  /// the chosen plans, costs, and applied transforms are bit-identical with
  /// the cache on or off.
  bool enable_cost_cache = true;
  size_t cost_cache_plan_capacity = 1024;
  size_t cost_cache_job_capacity = 16384;
  /// Borrowed external costing memo: when set, the optimizer routes what-if
  /// memoization through it instead of creating a per-call CostCache, so
  /// many Optimize calls can share one long-lived cache (stubbyd hands each
  /// request a CostCacheOverlay over the shared service cache). Takes
  /// precedence over `enable_cost_cache`. Transparent like the internal
  /// cache — plans and costs are bit-identical with any contents — so it
  /// stays out of the option salt.
  CostStore* cost_cache = nullptr;

  /// Task parallelism for the in-unit search: subplan candidates and RRS
  /// point blocks run as pool tasks, with results bit-identical at any
  /// thread count. When `pool` is set it is borrowed (and must outlive the
  /// Optimize call); otherwise a pool with `threads` threads is created
  /// per call when threads > 1.
  int threads = 1;
  ThreadPool* pool = nullptr;

  UnitSearchOptions unit;

  /// Cross-workflow result reuse (src/reuse/). When `reuse_store` and
  /// `reuse_dfs` are both set, Optimize matches the plan against the store
  /// before and after the transformation phases and rewrites hits into
  /// stored-snapshot scans. Both pointers are borrowed and must outlive the
  /// Optimize call. Reuse is bit-transparent on outputs, so none of these
  /// fields enter the option salt workflow-output keys are registered under.
  ResultStore* reuse_store = nullptr;
  const Dfs* reuse_dfs = nullptr;
  /// Allow the pre-optimization tier that elides the *entire* workflow when
  /// every terminal output is stored under this option set.
  bool reuse_whole_workflow = true;
  /// Reuse-conscious plan selection (MRShare/ReStore §5): fold store probes
  /// into the unit search so every candidate is also priced in its
  /// rewritten form and the search minimizes over reuse-aware costs,
  /// instead of only rewriting the winner in a post-pass. A post-hoc floor
  /// guarantees the chosen plan never prices above what the blind search
  /// plus the tier-2 rewrite would have produced. With a cold store the
  /// probes all miss and the result is bit-identical to the reuse-blind
  /// search. Like the other reuse fields this stays out of the option salt:
  /// reuse is bit-transparent on outputs.
  bool reuse_aware_search = true;
  /// Signature memo for the reuse-aware search (reuse/probe_cache.h): one
  /// Optimize-call-wide ReuseProbeCache memoizes JobReuseKey digests and
  /// the tier-2b MapStreamKey prefix ladder, so each distinct signature is
  /// derived once instead of once per RRS-configured candidate. A pure
  /// wall-time knob: plans, costs, and every counter except
  /// ReuseStats::probe_cache_{hits,misses} and signature_keys_computed are
  /// bit-identical on or off, so it stays out of the option salt.
  bool reuse_probe_cache = true;
  /// Columnar batch execution in the executor (mr/row_batch.h +
  /// exec/wrappers.h): eligible map pipelines and the map-side shuffle run
  /// over RowBatches instead of one Row at a time; everything else falls
  /// back to the record path. A pure wall-time knob with a hard invariant:
  /// outputs, per-phase dataflow accounting, plans, and costs are
  /// bit-identical on or off at any thread count, so it stays out of the
  /// option salt.
  bool vectorized_exec = true;
  /// Column-native dataset storage at the executor boundary
  /// (dfs/dataset.h PartitionData): eligible scans read stored columns as
  /// zero-copy RowBatch views instead of converting rows per chunk, shuffle
  /// buckets stay selection vectors over shared columns, batchable reduce
  /// pipelines run their grouped-aggregate kernels columnar, and batch
  /// outputs are stored column-native (rows derived lazily for row-path
  /// consumers). Only effective when `vectorized_exec` is on. A pure
  /// wall-time knob under the same hard invariant — outputs, dataflow
  /// accounting, dataset signatures, plans, costs, and makespans are
  /// bit-identical on or off at any thread count — so it stays out of the
  /// option salt. Env override: STUBBY_COLUMNAR=0 in stubbyctl and benches.
  bool columnar_storage = true;
  /// Adaptive suffix re-optimization (the Starfish profile/what-if loop
  /// closed mid-execution, exec/adaptive_runner.h): after each executed job
  /// the session compares the observed phase dataflow against the what-if
  /// prediction; when the worst relative error exceeds
  /// `reoptimize_threshold`, the not-yet-executed suffix of the workflow is
  /// re-profiled against the actual intermediate data and re-optimized
  /// (executed outputs become annotated base-input scans), and the new
  /// suffix is spliced in. Deterministic and bit-identical at any thread
  /// count; an exact no-op (bit-identical plans/outputs/costs/makespans)
  /// while every error stays below threshold. Final workflow outputs are
  /// bit-identical either way, so both knobs stay out of the option salt.
  /// Env override: STUBBY_REOPT=1 in stubbyctl and benches.
  bool reoptimize = false;
  /// Worst-field relative dataflow error that triggers a suffix re-plan.
  /// Must sit above the what-if engine's natural estimation error with
  /// accurate profiles (Figure 14 territory, well under 0.5 on the Table 1
  /// workloads) and below the damage a genuinely wrong profile causes.
  double reoptimize_threshold = 0.5;
  /// Bloom predicate transfer (optimizer/bloom.h): enumerate, for join jobs
  /// carrying a join annotation, the variant that builds a Bloom filter
  /// over the smaller input's join keys and pre-filters the other inputs'
  /// map output against it before the shuffle. The filter has false
  /// positives but no false negatives, so dropped rows belong only to
  /// groups the inner join discards — terminal outputs are bit-identical
  /// with the transfer on or off, which keeps this knob out of the option
  /// salt (like the other output-transparent knobs above). Default off:
  /// the transform is cost-enumerated alongside the existing groups when
  /// enabled. Env override: STUBBY_BLOOM=1 in stubbyctl and benches.
  bool bloom_transfer = false;
};

/// Digest of the options that shape what an optimized plan computes —
/// transform toggles, phase order, and the unit-search/RRS settings (seed
/// included). Excludes pure wall-time knobs (threads, pool, cost cache) and
/// the reuse fields themselves. Workflow-terminal store entries are keyed
/// under this salt: stored bits match a recompute only under equal options.
CostKey ReuseSaltFromOptions(const StubbyOptions& options);

/// Per-phase slice of an optimizer run.
struct PhaseReport {
  std::string name;  ///< "vertical", "horizontal", or "configuration"
  double wall_sec = 0.0;
  int units_processed = 0;
  int subplans_enumerated = 0;
};

/// What the optimizer did, for reporting and the Figure 13 bench.
struct OptimizeReport {
  Plan plan;
  double optimization_time_sec = 0.0;
  double estimated_cost = 0.0;
  bool fallback = false;
  int units_processed = 0;
  int subplans_enumerated = 0;
  std::vector<std::string> applied;  ///< transformation log
  /// Costing-layer counters for the whole run (what-if calls, cache
  /// hits/misses, full vs. incremental predictions, RRS evaluations).
  CostInstrumentation costing;
  std::vector<PhaseReport> phases;

  /// Result-reuse counters for this run (all zero when no store was given).
  ReuseStats reuse;
  /// True when the whole workflow was elided pre-optimization (the plan has
  /// zero jobs; every terminal output is a materialized snapshot scan).
  bool reuse_materialized = false;
  /// Lineage identity of materialized vertices in `plan` — the session
  /// seeds post-execution ComputeLineage with this so registrations from
  /// rewritten runs stay comparable with recomputed runs.
  std::map<std::string, CostKey> reuse_lineage_seeds;
  /// Snapshots pinned for this plan; the session unpins them after staging.
  std::vector<std::string> reuse_pinned;
};

/// Cost-based transformation-based workflow optimizer.
class StubbyOptimizer {
 public:
  explicit StubbyOptimizer(StubbyOptions options = {})
      : options_(options) {}

  /// Optimizes `plan`; equivalent output plan with minimum estimated cost.
  Result<OptimizeReport> Optimize(const Plan& plan) const;

 private:
  /// Mutable state of the reuse-aware search threaded through the phases:
  /// lineage seeds (base-input content keys plus the identities of
  /// vertices materialized by earlier units, so chained rewrites resolve),
  /// the accumulated hit counters of winning rewritten candidates, and how
  /// many units a rewritten candidate won.
  struct ReuseSearchState {
    std::map<std::string, CostKey> seeds;
    ReuseStats stats;
    uint64_t won_units = 0;
    /// Optimize-call-wide signature memo (nullptr when reuse_probe_cache is
    /// off); borrowed from the stack frame of Optimize.
    ProbeStore* probe_cache = nullptr;
  };

  /// One full traversal of the graph applying a transformation group.
  /// `reuse_state` non-null makes the unit search reuse-aware.
  Result<Plan> RunPhase(
      Plan plan, const std::vector<std::shared_ptr<Transformation>>& group,
      const WhatIfEngine& whatif, ThreadPool* pool, OptimizeReport* report,
      ReuseSearchState* reuse_state) const;

  StubbyOptions options_;
};

}  // namespace stubby

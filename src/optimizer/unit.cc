#include "optimizer/unit.h"

#include <algorithm>

#include "common/strings.h"

namespace stubby {

std::vector<std::string> OptimizationUnit::AllJobs() const {
  std::vector<std::string> all = producers;
  for (const auto& c : consumers) {
    if (std::find(all.begin(), all.end(), c) == all.end()) all.push_back(c);
  }
  return all;
}

std::string OptimizationUnit::ToString() const {
  return "unit{producers=[" + Join(producers, ",") + "], consumers=[" +
         Join(consumers, ",") + "]}";
}

std::optional<OptimizationUnit> NextUnit(
    const Plan& plan, const std::set<std::string>& processed) {
  OptimizationUnit unit;
  for (const auto& [jid, job] : plan.jobs()) {
    if (processed.count(jid)) continue;
    std::vector<std::string> ups = plan.UpstreamJobs(jid);
    bool ready = std::all_of(ups.begin(), ups.end(), [&](const std::string& u) {
      return processed.count(u) > 0;
    });
    if (ready) unit.producers.push_back(jid);
  }
  if (unit.producers.empty()) return std::nullopt;
  std::set<std::string> seen(unit.producers.begin(), unit.producers.end());
  for (const auto& p : unit.producers) {
    for (const auto& c : plan.DownstreamJobs(p)) {
      if (seen.insert(c).second) unit.consumers.push_back(c);
    }
  }
  return unit;
}

}  // namespace stubby

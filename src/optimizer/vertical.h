// Vertical packing transformations (Sections 3.1 and 3.2).
//
// Intra-job vertical packing converts a consumer MapReduce job into a
// Map-only job: the producer's partition function is rewritten to satisfy
// the grouping needs of both jobs (partition on Kp∩Kc, per-partition sort
// on [Kp∩Kc, Kp∪Kc − Kp∩Kc]), after which the consumer's reduce function
// moves to the map side and runs over partition-aligned reads. Correctness
// is checked purely on schema annotations: the consumer's K2 fields must
// flow unchanged — by field-name identity — from the producer's reduce
// input to the consumer's map output.
//
// Inter-job vertical packing moves the functions of a Map-only job into its
// producer or consumer, eliminating a whole job (and, when no other
// consumer needs it, the intermediate dataset).

#pragma once

#include "optimizer/transform.h"

namespace stubby {

/// Section 3.1. Covers one-to-one subgraphs, none-to-one subgraphs (the
/// grouping precondition is established by the base dataset's layout
/// annotation), and many-to-one subgraphs (all producers are rewritten to
/// partition identically and pinned to a common reduce-task count).
class IntraJobVerticalPacking : public Transformation {
 public:
  std::string name() const override { return "intra-job-vertical-packing"; }
  std::vector<Application> FindApplications(
      const Plan& plan,
      const std::vector<std::string>& unit_jobs) const override;
};

/// Section 3.2. Packs a Map-only job with its producer or consumer in a
/// one-to-one subgraph; the one-to-many extension packs with one consumer
/// while keeping the intermediate dataset materialized (tee) for the rest.
class InterJobVerticalPacking : public Transformation {
 public:
  std::string name() const override { return "inter-job-vertical-packing"; }
  std::vector<Application> FindApplications(
      const Plan& plan,
      const std::vector<std::string>& unit_jobs) const override;
};

}  // namespace stubby

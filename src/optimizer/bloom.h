// Bloom predicate-transfer transformation (sixth transformation type): for
// a multi-input join job whose join annotation marks inputs as filterable,
// build a Bloom filter over the join-key column of the smallest input's map
// output and pre-filter the other inputs' map output against it, dropping
// non-joining rows before the shuffle. The filter admits false positives
// but never false negatives, so every dropped row belongs to a group the
// inner join discards — terminal outputs are bit-identical with the
// transfer on or off (recorded in the job's conditions ledger).

#pragma once

#include "optimizer/transform.h"

namespace stubby {

/// Bloom predicate transfer: cuts join shuffle volume by transferring the
/// build side's key-membership predicate to the probe sides' map phase.
class BloomTransferTransform : public Transformation {
 public:
  std::string name() const override { return "bloom-transfer"; }
  std::vector<Application> FindApplications(
      const Plan& plan,
      const std::vector<std::string>& unit_jobs) const override;
};

/// True when STUBBY_BLOOM=1 (or any value but "0") in the environment;
/// `fallback` when unset. The CLI and benches seed
/// StubbyOptions::bloom_transfer from this, mirroring STUBBY_REOPT.
bool BloomTransferFromEnv(bool fallback = false);

}  // namespace stubby

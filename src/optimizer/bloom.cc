#include "optimizer/bloom.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>

#include "common/strings.h"
#include "mr/bloom_filter.h"

namespace stubby {

namespace {

/// Estimated records leaving the map-side pipeline of `in`: the dataset's
/// annotated record count scaled by partition pruning and each stage's
/// profiled record selectivity. Absent size annotations disqualify the
/// input (the information spectrum: no estimate, no application).
std::optional<double> EstimateMapOutputRecords(const Plan& plan,
                                               const BranchInput& in) {
  auto dvr = plan.GetDataset(in.dataset_id);
  if (!dvr.ok()) return std::nullopt;
  const DatasetAnnotation& ann = (*dvr)->annotation;
  if (!ann.num_records) return std::nullopt;
  double records =
      static_cast<double>(*ann.num_records) * in.prune_fraction;
  for (const Stage& s : in.map_stages) {
    if (s.stats) records *= s.stats->record_selectivity;
  }
  return std::max(records, 0.0);
}

/// Estimated fraction of probe-side rows whose key passes the build-side
/// filter. A branch filter annotation on a join-key field gives the direct
/// estimate (the build side keeps only keys in [lo, hi), so probes pass in
/// proportion to the key mass in that range); otherwise fall back to the
/// build side's cumulative record selectivity as a proxy for how much of
/// the key domain survives.
double EstimatePassFraction(const Branch& b, const BranchInput& build) {
  const std::vector<std::string> keys = b.GroupFields();
  if (b.annotations.filter &&
      std::find(keys.begin(), keys.end(), b.annotations.filter->field) !=
          keys.end()) {
    if (b.annotations.profile) {
      const KeyHistogram* hist =
          b.annotations.profile->FindHistogram(b.annotations.filter->field);
      if (hist != nullptr) {
        return std::clamp(hist->FractionInRange(b.annotations.filter->lo,
                                                b.annotations.filter->hi),
                          0.01, 1.0);
      }
    }
  }
  double sel = 1.0;
  for (const Stage& s : build.map_stages) {
    if (s.stats) sel *= s.stats->record_selectivity;
  }
  return std::clamp(sel, 0.05, 1.0);
}

}  // namespace

std::vector<Application> BloomTransferTransform::FindApplications(
    const Plan& plan, const std::vector<std::string>& unit_jobs) const {
  std::vector<Application> apps;
  for (const std::string& jid : unit_jobs) {
    auto jr = plan.GetJob(jid);
    if (!jr.ok()) continue;
    const JobVertex& job = **jr;
    for (size_t bi = 0; bi < job.branches.size(); ++bi) {
      const Branch& b = job.branches[bi];
      if (b.bloom || b.map_only() || b.merge_mode()) continue;
      if (!b.annotations.join || b.inputs.size() < 2) continue;
      const std::vector<std::string> keys = b.GroupFields();
      if (keys.empty()) continue;
      bool keys_ok = true;
      for (const std::string& k : keys) {
        if (!b.map_output_schema.Contains(k)) keys_ok = false;
      }
      if (!keys_ok) continue;

      // Build side: the input with the smallest estimated map output (the
      // filter must be cheap to build and dense in joining keys). Probe
      // sides: every *other* input the join annotation marks filterable —
      // only those may lose non-joining rows.
      std::optional<size_t> build;
      double build_records = std::numeric_limits<double>::infinity();
      std::vector<double> est(b.inputs.size(),
                              std::numeric_limits<double>::quiet_NaN());
      bool all_estimated = true;
      for (size_t ii = 0; ii < b.inputs.size(); ++ii) {
        auto e = EstimateMapOutputRecords(plan, b.inputs[ii]);
        if (!e) {
          all_estimated = false;
          break;
        }
        est[ii] = *e;
        if (*e < build_records) {
          build_records = *e;
          build = ii;
        }
      }
      if (!all_estimated || !build) continue;
      const std::set<size_t> filterable(
          b.annotations.join->filterable_inputs.begin(),
          b.annotations.join->filterable_inputs.end());
      std::vector<size_t> probes;
      for (size_t ii = 0; ii < b.inputs.size(); ++ii) {
        if (ii != *build && filterable.count(ii)) probes.push_back(ii);
      }
      if (probes.empty()) continue;

      BloomTransferSpec spec;
      spec.build_input = *build;
      spec.probe_inputs = probes;
      spec.key_fields = keys;
      spec.bits_log2 = BloomFilter::SizeForKeys(
          static_cast<uint64_t>(std::llround(std::max(build_records, 1.0))));
      spec.num_hashes = 6;
      spec.est_pass_fraction = EstimatePassFraction(b, b.inputs[*build]);

      Application app;
      app.transform_name = name();
      app.description = StrFormat(
          "bloom transfer on %s: build %s (~%.0f keys), probe %zu input%s, "
          "est pass %.2f",
          jid.c_str(), b.inputs[*build].dataset_id.c_str(), build_records,
          probes.size(), probes.size() == 1 ? "" : "s",
          spec.est_pass_fraction);
      app.apply = [jid, bi, spec](const Plan& plan_in) -> Result<Plan> {
        Plan np = plan_in;
        STUBBY_ASSIGN_OR_RETURN(JobVertex * j2, np.GetMutableJob(jid));
        Branch& b2 = j2->branches[bi];
        for (size_t ii : spec.probe_inputs) {
          auto probe_fn = std::make_shared<BloomProbeMapFn>(
              StrFormat("bloom_probe_%s_%zu", jid.c_str(), ii),
              b2.map_output_schema, spec.key_fields);
          StageStats stats;
          stats.record_selectivity = spec.est_pass_fraction;
          stats.byte_selectivity = spec.est_pass_fraction;
          stats.cpu_per_record = probe_fn->cpu_cost_per_record();
          b2.inputs[ii].map_stages.push_back(
              Stage::Map(std::move(probe_fn), stats));
        }
        b2.bloom = spec;
        j2->conditions.bloom_transfer = true;
        STUBBY_RETURN_NOT_OK(np.Validate());
        return np;
      };
      apps.push_back(std::move(app));
    }
  }
  return apps;
}

bool BloomTransferFromEnv(bool fallback) {
  const char* env = std::getenv("STUBBY_BLOOM");
  if (env == nullptr) return fallback;
  return std::string(env) != "0";
}

}  // namespace stubby

// Horizontal packing transformation (Section 3.3): packs the map (reduce)
// functions of multiple concurrently-runnable jobs into the map (reduce)
// tasks of one transformed job. Jobs reading the same dataset share its
// scan (the MRShare-style precondition); the extended form packs any
// concurrently-runnable jobs, with each pipeline processing only rows from
// its own input (how the paper folds J1 and J2 of the running example into
// one job).

#pragma once

#include "optimizer/transform.h"

namespace stubby {

/// Section 3.3.
class HorizontalPacking : public Transformation {
 public:
  /// `extended` enables packing of concurrently-runnable jobs that do not
  /// share an input dataset.
  explicit HorizontalPacking(bool extended = true) : extended_(extended) {}

  std::string name() const override { return "horizontal-packing"; }
  std::vector<Application> FindApplications(
      const Plan& plan,
      const std::vector<std::string>& unit_jobs) const override;

 private:
  bool extended_;
};

}  // namespace stubby

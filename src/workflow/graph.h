// Plan graph vertices (Section 2.1): MapReduce jobs and datasets connected
// by producer-consumer edges.
//
// The executable form of a job's program is a set of *branches* (parallel
// function pipelines — more than one only after horizontal packing), each a
// sequence of *stages* (map or streaming-grouped reduce functions — more
// than one per side only after vertical packing). This representation makes
// every packing transformation a pure structural rewrite: stages move
// between jobs and carry their profiled statistics with them.

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dfs/layout.h"
#include "mr/cluster.h"
#include "mr/functions.h"
#include "mr/job_config.h"
#include "mr/partitioner.h"
#include "workflow/annotations.h"

namespace stubby {

/// One function application in a pipeline. A kReduce stage performs a
/// streaming group-by on `group_fields`; its input stream must arrive
/// clustered on those fields (guaranteed by the producing shuffle or by the
/// layout preconditions the transformations check).
struct Stage {
  enum class Kind { kMap, kReduce };

  Kind kind = Kind::kMap;
  std::shared_ptr<MapFn> map_fn;        ///< set when kind == kMap
  std::shared_ptr<ReduceFn> reduce_fn;  ///< set when kind == kReduce
  std::vector<std::string> group_fields;  ///< kReduce: grouping fields

  /// Measured statistics of this function (from profile annotations); absent
  /// when no profile is available.
  std::optional<StageStats> stats;

  /// If non-empty, rows flowing out of this stage are also materialized to
  /// this dataset id (used when inter-job packing must keep producing the
  /// original intermediate dataset for other consumers).
  std::string tee_dataset;

  /// Row type produced by this stage.
  const Schema& output_schema() const {
    return kind == Kind::kMap ? map_fn->output_schema()
                              : reduce_fn->output_schema();
  }

  std::string name() const {
    return kind == Kind::kMap ? map_fn->name() : reduce_fn->name();
  }

  static Stage Map(std::shared_ptr<MapFn> fn,
                   std::optional<StageStats> stats = std::nullopt);
  static Stage Reduce(std::shared_ptr<ReduceFn> fn,
                      std::vector<std::string> group_fields,
                      std::optional<StageStats> stats = std::nullopt);
};

/// One input dataset of a branch together with the map-side stages applied
/// to rows from this input (per-input pipelines support multi-input joins,
/// as with Hadoop's MultipleInputs).
struct BranchInput {
  std::string dataset_id;

  /// Map-side pipeline for rows of this input. May contain kReduce stages
  /// after intra-job vertical packing (their grouping is then guaranteed by
  /// the input dataset's layout).
  std::vector<Stage> map_stages;

  /// Partition pruning: if non-empty, only these partitions of the dataset
  /// are read (set by the partition function transformation).
  std::vector<int> prune_partitions;

  /// Estimated fraction of the dataset's records surviving the pruning
  /// (1.0 = no pruning). Set by the partition function transformation from
  /// the producer's key histogram; used by the what-if engine only — the
  /// executor reads the physically selected partitions.
  double prune_fraction = 1.0;

  /// Partition-aligned read: each map task consumes exactly one partition of
  /// the input, whole and in stored order (postcondition 2 of intra-job
  /// vertical packing). When false, the input is split by size.
  bool aligned = false;

  /// Schema of the rows leaving the map side of this input.
  Result<Schema> MapOutputSchema(const Schema& input_schema) const;
};

/// Bloom predicate transfer attached to a multi-input join branch
/// (optimizer/bloom.h): before the map phase, the executor scans the
/// `build_input`'s map output and inserts the `key_fields` hashes into a
/// deterministic blocked Bloom filter; each `probe_inputs` member carries a
/// BloomProbeMapFn stage (appended to its map_stages) that the executor
/// binds to the built filter, dropping non-joining rows before the
/// shuffle. The spec is pure plan data — serialized, digested, validated —
/// while the filter itself is per-run executor state.
struct BloomTransferSpec {
  /// Index into Branch::inputs of the (smaller) filter-building side.
  size_t build_input = 0;

  /// Indices of the inputs whose probe stage this spec binds.
  std::vector<size_t> probe_inputs;

  /// Join-key fields, named in the branch's map_output_schema (hashes are
  /// computed on the *map output*, so build and probe sides agree).
  std::vector<std::string> key_fields;

  /// Filter layout: 2^bits_log2 bits, num_hashes bits per key, fixed seed.
  int bits_log2 = 20;
  int num_hashes = 6;

  /// Estimated fraction of probe-side rows passing the filter (what-if
  /// only; the executor observes the real fraction).
  double est_pass_fraction = 1.0;
};

/// One parallel function pipeline of a job. A plain MapReduce job is one
/// branch; horizontal packing merges the branches of several jobs into one
/// job.
struct Branch {
  /// Tag identifying the branch — the id of the original job it came from.
  /// Used by the tagged shuffle to route rows to the right reduce pipeline.
  std::string tag;

  std::vector<BranchInput> inputs;

  /// Co-aligned merged stages: run map-side over the *merged* stream of all
  /// inputs (after each input's own map_stages), one task per co-aligned
  /// partition index. Non-empty only when every input is aligned and the
  /// inputs are co-partitioned — the structural form intra-job vertical
  /// packing produces (the moved reduce function must see rows of a group
  /// from all inputs together). The merged stream is ordered by
  /// `merge_sort_fields` before these stages run.
  std::vector<Stage> merged_map_stages;
  std::vector<std::string> merge_sort_fields;

  /// Row type entering the merged stages (every input's map_stages must
  /// yield it). Meaningful only when merged_map_stages is non-empty.
  Schema merge_schema;

  /// Row type flowing from the map side into the shuffle (or, for map-only
  /// branches, into the output dataset).
  Schema map_output_schema;

  /// Reduce-side pipeline; empty makes this branch map-only.
  std::vector<Stage> reduce_stages;

  /// Partition function between this branch's map and reduce sides.
  PartitionSpec partition;

  /// Optional combine function applied to map-side spills when the job
  /// config enables it.
  std::shared_ptr<CombineFn> combiner;

  /// Output dataset id written by the end of the pipeline.
  std::string output_dataset;

  /// For map-only merge-mode branches (intra-job vertical packing output):
  /// the partitioning that each co-aligned task's output inherits from its
  /// input partition — task t reads partition t and writes partition t, so
  /// the output stays partitioned/ordered. Consulted by DeriveOutputLayout.
  std::optional<PartitionSpec> preserved_partition;

  /// Set by the Bloom predicate-transfer transformation.
  std::optional<BloomTransferSpec> bloom;

  /// Annotations of the (original or adjusted) job this branch represents.
  JobAnnotations annotations;

  bool map_only() const { return reduce_stages.empty(); }

  /// True when the branch uses co-aligned merged map-side stages.
  bool merge_mode() const { return !merged_map_stages.empty(); }

  /// Grouping fields required by the first reduce stage (empty if map-only).
  std::vector<std::string> GroupFields() const;

  /// Row type of the branch's final output.
  Result<Schema> OutputSchema(const Schema& input_schema) const;
};

/// Conditions imposed on a job by prior transformations or by the workflow
/// generator; later transformations must keep satisfying them (Sections
/// 3.4, 3.5).
struct JobConditions {
  /// Partition spec may not be altered (a consumer's packing depends on it,
  /// or the program semantically requires it, e.g. a sort job).
  bool partition_frozen = false;

  /// Number of reduce tasks is fixed (e.g. single-task top-K computations,
  /// or alignment with a consumer's map tasks).
  std::optional<int> num_reduce_fixed;

  /// Conditions-ledger record of an applied Bloom predicate transfer: the
  /// branch's probe pre-filters may drop only rows whose join key has no
  /// build-side partner, and the filter admits false positives but never
  /// false negatives — so every dropped row belongs to a group the inner
  /// join discards, and terminal outputs are bit-identical with the
  /// transfer on or off.
  bool bloom_transfer = false;
};

/// A MapReduce job vertex: J = <p, c, a> where p is the branch set, c the
/// configuration, and a the per-branch annotations.
struct JobVertex {
  std::string id;
  std::vector<Branch> branches;
  JobConfig config;
  JobConditions conditions;

  bool map_only() const;
  bool horizontally_packed() const { return branches.size() > 1; }

  /// All distinct input dataset ids across branches.
  std::vector<std::string> InputDatasets() const;

  /// All output dataset ids (branch outputs + stage tees).
  std::vector<std::string> OutputDatasets() const;

  /// The single branch of an unpacked job; error if horizontally packed.
  Result<const Branch*> SoleBranch() const;

  /// Effective number of reduce tasks after all constraints (range
  /// partitioning and conditions override the config).
  int EffectiveReduceTasks() const;
};

/// A dataset vertex: D = <d, l, a>.
struct DatasetVertex {
  std::string id;
  Schema schema;  ///< structural row type (always known to the executor)
  Layout layout;  ///< planned physical layout

  /// Base input of the workflow (exists in the DFS before execution).
  bool is_base_input = false;

  /// Terminal output that must survive (never eliminated by packing).
  bool is_workflow_output = false;

  /// Non-empty when this vertex is served from the cross-workflow
  /// ResultStore instead of being computed: the stored-result id inside the
  /// store whose snapshot must be staged into the DFS under `id` before
  /// execution. Such vertices are base inputs of the rewritten plan.
  std::string materialized_from;

  /// What the *optimizer* knows about this dataset (may be less than the
  /// structural truth above — the information spectrum).
  DatasetAnnotation annotation;
};

/// Map tasks are formed per *input group*: branch inputs of one job that
/// read the same dataset the same way share a single physical scan (the
/// essence of horizontal packing's read sharing). Each group's map tasks run
/// the pipelines of all subscribing branch inputs.
struct InputGroup {
  std::string dataset_id;
  bool aligned = false;
  std::vector<int> prune_partitions;
  double prune_fraction = 1.0;
  /// (branch index, input index) pairs subscribing to this scan.
  std::vector<std::pair<size_t, size_t>> subscribers;
};

/// Canonical form of a prune-partition list: sorted, deduplicated. Pruning
/// selects a *set* of partitions, so `{2,1}` and `{1,2,2}` describe the same
/// physical read; every consumer (scan grouping, the executor, reuse keys)
/// compares and reads prune lists in this form.
std::vector<int> CanonicalPrunePartitions(const std::vector<int>& prune);

/// Groups the job's branch inputs by (dataset, aligned, prune set). Shared
/// by the executor and the what-if engine so both account scans identically.
/// Group prune lists are canonical (sorted, deduplicated).
std::vector<InputGroup> GroupBranchInputs(const JobVertex& job);

/// Derives the layout of the dataset produced by `branch` of a job with
/// configuration `config`: partitioning/order information is retained only
/// if the relevant fields survive into the output schema under identical
/// names. Shared by the executor, the cost model, and the transformations.
Layout DeriveOutputLayout(const Branch& branch, const JobConfig& config,
                          const Schema& output_schema);

}  // namespace stubby

// Annotations (Section 2.2): the generic mechanism by which workflow
// generators convey information to Stubby. Three categories:
//   - dataset annotations: physical design of datasets (partitioning,
//     ordering, compression, size);
//   - program annotations: schema (K1..K3 / V1..V3 field composition) and
//     filter (consumer uses only a subset of its producer's output);
//   - profile annotations: dataflow and cost statistics of program execution
//     (from the profiler), used by the what-if engine.
//
// Every annotation is optional. Stubby only enumerates the subspace of the
// plan space whose transformations can be checked with the annotations that
// are present (the information spectrum).

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dfs/layout.h"
#include "mr/schema.h"

namespace stubby {

/// Known information about a dataset (D.a of D = <d, l, a>).
struct DatasetAnnotation {
  /// Field composition of the dataset's rows, if known.
  std::optional<Schema> schema;

  /// Known physical layout (partitioning / ordering / compression). For base
  /// inputs this is what the loading pipeline recorded, e.g.
  /// D01.dataset = {schema=<C,O,...>, partition=<hash(C)>}.
  std::optional<Layout> layout;

  /// Known size, if any.
  std::optional<uint64_t> num_records;
  std::optional<uint64_t> bytes;

  /// Known partition count (for partitioned layouts).
  std::optional<int> num_partitions;
};

/// Schema annotation of one MapReduce program: the composition of the key
/// and value types K1-K3, V1-V3 as field-name sets. Identical field names
/// across functions indicate data that flows unchanged (Section 2.2).
struct SchemaAnnotation {
  std::optional<FieldSet> k1, v1;
  std::optional<FieldSet> k2, v2;
  std::optional<FieldSet> k3, v3;

  std::string ToString() const;
};

/// Filter annotation: the program uses as input only rows whose `field`
/// value lies in [lo, hi), e.g. J6.filter = {0 <= O < 100}.
struct FilterAnnotation {
  std::string field;
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double v) const { return v >= lo && v < hi; }
  std::string ToString() const;
};

/// Per-stage dataflow and cost statistics — the granular form of the
/// paper's profile annotations. The profiler measures these per function;
/// packing transformations move stages together with their stats, which is
/// exactly the paper's "adjustment" (new selectivity = product, new CPU
/// cost = sum) realized structurally.
struct StageStats {
  /// Output records per input record of the stage (record selectivity).
  double record_selectivity = 1.0;

  /// Output bytes per input byte.
  double byte_selectivity = 1.0;

  /// Relative CPU cost units per input record.
  double cpu_per_record = 1.0;

  /// For reduce stages: distinct groups per input record (1/avg group size).
  double groups_per_record = 1.0;

  std::string ToString() const;
};

/// Approximate distribution of a (numeric) field, used to choose range
/// split points, estimate partition-pruning savings, and estimate skew.
struct KeyHistogram {
  std::string field;
  double min = 0.0;
  double max = 0.0;
  /// Fraction of records per equi-width bucket. Together with the heavy
  /// hitters below, fractions sum to ~1 (hitters are point masses excluded
  /// from the buckets).
  std::vector<double> bucket_fractions;
  /// Estimated number of distinct values.
  uint64_t distinct = 0;
  /// Fraction of records carrying the single most frequent value (heavy-
  /// hitter share; drives reduce-side skew estimates for hash partitioning).
  double max_key_fraction = 0.0;
  /// The most frequent values as (value, record fraction) point masses,
  /// descending by fraction. Range estimates treat them exactly, which is
  /// what makes range-partition skew predictions usable on skewed keys.
  std::vector<std::pair<double, double>> heavy_hitters;

  /// Fraction of records with value in [lo, hi).
  double FractionInRange(double lo, double hi) const;

  /// Value v such that approximately `q` of the records are below v.
  double Quantile(double q) const;

  std::string ToString() const;
};

/// Job-level profile annotation: execution statistics that are not tied to
/// a single stage.
struct ProfileAnnotation {
  /// Average serialized input record size in bytes.
  double avg_input_record_bytes = 100.0;

  /// Histograms of map-output key fields (by field name).
  std::vector<KeyHistogram> key_histograms;

  /// Selectivity of the combine function per sorted spill (records out /
  /// records in), if the program has a combiner.
  double combine_selectivity = 1.0;
  double combine_cpu_per_record = 0.3;

  /// Number of distinct K2 groups in the map output (drives the analytic
  /// combine-effectiveness model: a map task with n records over G groups
  /// combines down to about G*(1-exp(-n/G)) records).
  double k2_distinct_groups = 0.0;

  /// Fraction of map-output records carrying the most frequent K2 group
  /// key (reduce-skew heavy hitter).
  double k2_max_group_fraction = 0.0;

  const KeyHistogram* FindHistogram(const std::string& field) const;

  std::string ToString() const;
};

/// Join annotation: the branch's reduce is an inner join over its inputs —
/// a group contributes to the output only when it holds at least one row
/// from *every* input. Rows of a `filterable_inputs` member whose key has
/// no partner are therefore semantically dead: dropping them before the
/// shuffle cannot change any output (the precondition of the Bloom
/// predicate-transfer transformation).
struct JoinAnnotation {
  /// Branch-input indices whose non-joining rows may be dropped. Inputs not
  /// listed (e.g. an outer side) are never pre-filtered.
  std::vector<size_t> filterable_inputs;

  std::string ToString() const;
};

/// All annotations of one (original or packed) job.
struct JobAnnotations {
  std::optional<SchemaAnnotation> schema;
  std::optional<FilterAnnotation> filter;
  std::optional<JoinAnnotation> join;
  std::optional<ProfileAnnotation> profile;
};

}  // namespace stubby

#include "workflow/annotations.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace stubby {

std::string SchemaAnnotation::ToString() const {
  std::string out;
  auto add = [&](const char* name, const std::optional<FieldSet>& fs) {
    if (!fs) return;
    if (!out.empty()) out += " ";
    out += name;
    out += "=" + FieldSetToString(*fs);
  };
  add("K1", k1);
  add("V1", v1);
  add("K2", k2);
  add("V2", v2);
  add("K3", k3);
  add("V3", v3);
  return out;
}

std::string FilterAnnotation::ToString() const {
  return StrFormat("{%g<=%s<%g}", lo, field.c_str(), hi);
}

std::string JoinAnnotation::ToString() const {
  std::string out = "join{filterable=";
  for (size_t i = 0; i < filterable_inputs.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("%zu", filterable_inputs[i]);
  }
  return out + "}";
}

std::string StageStats::ToString() const {
  return StrFormat("sel=%.3f bsel=%.3f cpu=%.2f groups=%.4f",
                   record_selectivity, byte_selectivity, cpu_per_record,
                   groups_per_record);
}

double KeyHistogram::FractionInRange(double lo, double hi) const {
  if (bucket_fractions.empty() || max < min) return 1.0;
  double point_mass = 0.0;
  for (const auto& [value, fraction] : heavy_hitters) {
    if (value >= lo && value < hi) point_mass += fraction;
  }
  lo = std::max(lo, min);
  hi = std::min(hi, max + 1e-12);
  if (hi <= lo) return std::clamp(point_mass, 0.0, 1.0);
  if (max == min) {
    return std::clamp(point_mass + bucket_fractions[0], 0.0, 1.0);
  }
  const double width =
      (max - min) / static_cast<double>(bucket_fractions.size());
  double total = point_mass;
  for (size_t i = 0; i < bucket_fractions.size(); ++i) {
    double b_lo = min + width * static_cast<double>(i);
    double b_hi = b_lo + width;
    double overlap = std::min(hi, b_hi) - std::max(lo, b_lo);
    if (overlap > 0) total += bucket_fractions[i] * (overlap / width);
  }
  return std::clamp(total, 0.0, 1.0);
}

double KeyHistogram::Quantile(double q) const {
  if (bucket_fractions.empty() || max <= min) return min;
  q = std::clamp(q, 0.0, 1.0);
  // Walk the mixture of uniform-in-bucket mass and heavy-hitter point
  // masses in value order.
  std::vector<std::pair<double, double>> hitters = heavy_hitters;
  std::sort(hitters.begin(), hitters.end());
  const double width =
      (max - min) / static_cast<double>(bucket_fractions.size());
  double acc = 0.0;
  size_t hi_idx = 0;
  for (size_t i = 0; i < bucket_fractions.size(); ++i) {
    double b_lo = min + width * static_cast<double>(i);
    double b_hi = b_lo + width;
    // Point masses inside this bucket, in value order; the bucket's own
    // mass is spread uniformly between them.
    double cursor = b_lo;
    double bucket_mass = bucket_fractions[i];
    while (true) {
      double next_hitter =
          hi_idx < hitters.size() && hitters[hi_idx].first < b_hi
              ? hitters[hi_idx].first
              : b_hi;
      double seg = (next_hitter - cursor) / width;
      double seg_mass = bucket_mass * std::max(0.0, seg);
      if (acc + seg_mass >= q && seg_mass > 0) {
        double within = (q - acc) / seg_mass;
        return cursor + (next_hitter - cursor) * within;
      }
      acc += seg_mass;
      cursor = next_hitter;
      if (next_hitter >= b_hi) break;
      // Consume the point mass.
      acc += hitters[hi_idx].second;
      if (acc >= q) return hitters[hi_idx].first;
      ++hi_idx;
    }
  }
  return max;
}

std::string KeyHistogram::ToString() const {
  return StrFormat("hist(%s in [%g,%g], %zu buckets, distinct~%llu)",
                   field.c_str(), min, max, bucket_fractions.size(),
                   (unsigned long long)distinct);
}

const KeyHistogram* ProfileAnnotation::FindHistogram(
    const std::string& field) const {
  for (const auto& h : key_histograms) {
    if (h.field == field) return &h;
  }
  return nullptr;
}

std::string ProfileAnnotation::ToString() const {
  return StrFormat("profile{rec_bytes=%.1f, %zu histograms}",
                   avg_input_record_bytes, key_histograms.size());
}

}  // namespace stubby

// Plan: an annotated MapReduce workflow — the unit Stubby optimizes. Holds
// the DAG of job and dataset vertices plus the cluster spec used for
// costing. Plans are value types: the search copies them freely (UDF
// objects are shared immutably and cloned only at execution time).

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "mr/cluster.h"
#include "workflow/graph.h"

namespace stubby {

/// Annotated workflow of MapReduce jobs.
class Plan {
 public:
  Plan() = default;
  explicit Plan(ClusterSpec cluster) : cluster_(std::move(cluster)) {}

  const ClusterSpec& cluster() const { return cluster_; }
  ClusterSpec* mutable_cluster() { return &cluster_; }

  // --- construction -------------------------------------------------------

  /// Adds a job vertex; fails on duplicate id.
  Status AddJob(JobVertex job);

  /// Adds a dataset vertex; fails on duplicate id.
  Status AddDataset(DatasetVertex dataset);

  /// Removes a job (dataset vertices are left in place; callers clean up
  /// orphaned intermediates via RemoveOrphanDatasets).
  void RemoveJob(const std::string& id);
  void RemoveDataset(const std::string& id);

  /// Drops intermediate datasets that no job produces or consumes anymore.
  void RemoveOrphanDatasets();

  // --- access --------------------------------------------------------------

  bool HasJob(const std::string& id) const { return jobs_.count(id) > 0; }
  bool HasDataset(const std::string& id) const {
    return datasets_.count(id) > 0;
  }

  Result<const JobVertex*> GetJob(const std::string& id) const;
  Result<JobVertex*> GetMutableJob(const std::string& id);
  Result<const DatasetVertex*> GetDataset(const std::string& id) const;
  Result<DatasetVertex*> GetMutableDataset(const std::string& id);

  const std::map<std::string, JobVertex>& jobs() const { return jobs_; }
  const std::map<std::string, DatasetVertex>& datasets() const {
    return datasets_;
  }

  size_t num_jobs() const { return jobs_.size(); }

  // --- graph structure -----------------------------------------------------

  /// Id of the job producing `dataset_id` (empty if it is a base input).
  std::string ProducerOf(const std::string& dataset_id) const;

  /// Ids of jobs reading `dataset_id`, in job-id order.
  std::vector<std::string> ConsumersOf(const std::string& dataset_id) const;

  /// Jobs whose outputs this job reads / jobs reading this job's outputs.
  std::vector<std::string> UpstreamJobs(const std::string& job_id) const;
  std::vector<std::string> DownstreamJobs(const std::string& job_id) const;

  /// Jobs in topological order; error if the graph has a cycle.
  Result<std::vector<std::string>> TopologicalOrder() const;

  /// True if there is a directed path from job `a` to job `b`.
  bool HasPath(const std::string& a, const std::string& b) const;

  // --- integrity -----------------------------------------------------------

  /// Structural validation: referenced datasets exist, schemas flow
  /// consistently through stages, partition/sort/group fields are present,
  /// grouped map-side stages only appear on aligned inputs, each dataset has
  /// at most one producer, and the job graph is acyclic.
  Status Validate() const;

  /// Multi-line human-readable rendering.
  std::string ToString() const;

 private:
  ClusterSpec cluster_;
  std::map<std::string, JobVertex> jobs_;
  std::map<std::string, DatasetVertex> datasets_;
};

}  // namespace stubby

// Export/import of annotated workflow plans as JSON — the counterpart of
// the prototype's Pig feature "for exporting and importing annotated
// MapReduce workflows used by Stubby" (Section 6). The structure, every
// annotation, configurations, and conditions round-trip; the black-box
// UDFs themselves are referenced by name and resolved on import through a
// FunctionResolver (a real integration would map names to job-jar classes;
// PlanFunctionResolver harvests them from an in-memory plan).

#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/json.h"
#include "common/result.h"
#include "workflow/plan.h"

namespace stubby {

/// Resolves function names to UDF instances during plan import.
class FunctionResolver {
 public:
  virtual ~FunctionResolver() = default;
  virtual Result<std::shared_ptr<MapFn>> ResolveMap(
      const std::string& name) const = 0;
  virtual Result<std::shared_ptr<ReduceFn>> ResolveReduce(
      const std::string& name) const = 0;
  virtual Result<std::shared_ptr<CombineFn>> ResolveCombine(
      const std::string& name) const = 0;
};

/// Resolver that harvests every function reachable from a plan, keyed by
/// the function's name() — enough to round-trip any plan whose UDFs are
/// already loaded in the process.
class PlanFunctionResolver : public FunctionResolver {
 public:
  explicit PlanFunctionResolver(const Plan& plan);

  Result<std::shared_ptr<MapFn>> ResolveMap(
      const std::string& name) const override;
  Result<std::shared_ptr<ReduceFn>> ResolveReduce(
      const std::string& name) const override;
  Result<std::shared_ptr<CombineFn>> ResolveCombine(
      const std::string& name) const override;

 private:
  std::map<std::string, std::shared_ptr<MapFn>> maps_;
  std::map<std::string, std::shared_ptr<ReduceFn>> reduces_;
  std::map<std::string, std::shared_ptr<CombineFn>> combines_;
};

/// Row / layout JSON building blocks, shared with other serializers (the
/// result-store catalog persists rows and layouts with the same encoding,
/// so exported artifacts stay mutually diffable).
Json RowToJson(const Row& row);
Result<Row> RowFromJson(const Json& j);
Json LayoutToJson(const Layout& layout);
Result<Layout> LayoutFromJson(const Json& j);

/// Plan -> JSON document (structure + annotations + configs + conditions).
Json PlanToJson(const Plan& plan);

/// JSON document -> Plan; validates before returning.
Result<Plan> PlanFromJson(const Json& json, const FunctionResolver& resolver);

/// Convenience: pretty-printed JSON text.
std::string ExportPlan(const Plan& plan);
Result<Plan> ImportPlan(const std::string& text,
                        const FunctionResolver& resolver);

}  // namespace stubby

// Graphviz export of a plan — handy for inspecting what the optimizer did
// to a workflow (jobs as boxes, datasets as ellipses, like Figure 1).

#pragma once

#include <string>

#include "workflow/plan.h"

namespace stubby {

/// Renders the plan's DAG as a Graphviz `digraph`.
std::string PlanToDot(const Plan& plan);

}  // namespace stubby

#include "workflow/dot.h"

#include <sstream>

namespace stubby {

namespace {
std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string PlanToDot(const Plan& plan) {
  std::ostringstream os;
  os << "digraph workflow {\n  rankdir=TB;\n";
  for (const auto& [id, ds] : plan.datasets()) {
    // Reused scans (served from the result store) stand out from ordinary
    // base inputs: green fill plus a "reused" label suffix.
    std::string suffix;  // appended after escaping: contains dot escapes
    std::string style;
    if (!ds.materialized_from.empty()) {
      suffix = "\\n(reused)";
      style = ", style=filled, fillcolor=palegreen";
    } else if (ds.is_base_input) {
      style = ", style=filled, fillcolor=lightgray";
    }
    os << "  \"" << Escape(id) << "\" [shape=ellipse, label=\"" << Escape(id)
       << suffix << "\"" << style
       << (ds.is_workflow_output ? ", peripheries=2" : "") << "];\n";
  }
  for (const auto& [id, job] : plan.jobs()) {
    std::string label = id;
    if (job.horizontally_packed()) {
      label += " (packed x" + std::to_string(job.branches.size()) + ")";
    } else if (job.map_only()) {
      label += " (map-only)";
    }
    for (const Branch& b : job.branches) {
      if (b.bloom) {
        label += " (bloom)";
        break;
      }
    }
    os << "  \"" << Escape(id) << "\" [shape=box, label=\"" << Escape(label)
       << "\"];\n";
    for (const auto& in : job.InputDatasets()) {
      os << "  \"" << Escape(in) << "\" -> \"" << Escape(id) << "\";\n";
    }
    for (const auto& out : job.OutputDatasets()) {
      os << "  \"" << Escape(id) << "\" -> \"" << Escape(out) << "\";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace stubby

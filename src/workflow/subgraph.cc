#include "workflow/subgraph.h"

#include <algorithm>
#include <set>

namespace stubby {

const char* SubgraphTypeName(SubgraphType t) {
  switch (t) {
    case SubgraphType::kOneToOne:
      return "one-to-one";
    case SubgraphType::kOneToMany:
      return "one-to-many";
    case SubgraphType::kManyToOne:
      return "many-to-one";
    case SubgraphType::kNoneToOne:
      return "none-to-one";
    case SubgraphType::kOneToNone:
      return "one-to-none";
    case SubgraphType::kMixed:
      return "mixed";
  }
  return "?";
}

SubgraphType ClassifyConsumer(const Plan& plan,
                              const std::string& consumer_id) {
  std::vector<std::string> producers = plan.UpstreamJobs(consumer_id);
  if (producers.empty()) return SubgraphType::kNoneToOne;
  if (producers.size() > 1) return SubgraphType::kManyToOne;
  // One producer: check whether that producer feeds other consumers too.
  const std::string& p = producers[0];
  std::vector<std::string> consumers = plan.DownstreamJobs(p);
  if (consumers.size() == 1) {
    // Also require that the consumer reads only that producer's outputs or
    // base inputs; a mix with other producers was handled above.
    return SubgraphType::kOneToOne;
  }
  return SubgraphType::kOneToMany;
}

SubgraphType ClassifyProducer(const Plan& plan,
                              const std::string& producer_id) {
  std::vector<std::string> consumers = plan.DownstreamJobs(producer_id);
  if (consumers.empty()) return SubgraphType::kOneToNone;
  if (consumers.size() > 1) return SubgraphType::kOneToMany;
  std::vector<std::string> peers = plan.UpstreamJobs(consumers[0]);
  if (peers.size() > 1) return SubgraphType::kManyToOne;
  return SubgraphType::kOneToOne;
}

bool IsOneToOne(const Plan& plan, const std::string& producer_id,
                const std::string& consumer_id) {
  std::vector<std::string> ups = plan.UpstreamJobs(consumer_id);
  if (ups.size() != 1 || ups[0] != producer_id) return false;
  std::vector<std::string> downs = plan.DownstreamJobs(producer_id);
  return downs.size() == 1 && downs[0] == consumer_id;
}

bool ConcurrentlyRunnable(const Plan& plan, const std::string& a,
                          const std::string& b) {
  if (a == b) return false;
  return !plan.HasPath(a, b) && !plan.HasPath(b, a);
}

std::vector<std::string> SharedInputs(const Plan& plan, const std::string& a,
                                      const std::string& b) {
  std::vector<std::string> out;
  auto ja = plan.GetJob(a);
  auto jb = plan.GetJob(b);
  if (!ja.ok() || !jb.ok()) return out;
  std::vector<std::string> ia = (*ja)->InputDatasets();
  std::vector<std::string> ib = (*jb)->InputDatasets();
  std::set<std::string> sb(ib.begin(), ib.end());
  for (const auto& d : ia) {
    if (sb.count(d)) out.push_back(d);
  }
  return out;
}

}  // namespace stubby

// Producer-consumer subgraph classification (Figure 3 of the paper): the
// five relationship shapes that the transformations' preconditions are
// stated over — one-to-one, one-to-many, many-to-one, none-to-one, and
// one-to-none (combinations can arise and are reported as kMixed).

#pragma once

#include <string>
#include <vector>

#include "workflow/plan.h"

namespace stubby {

enum class SubgraphType {
  kOneToOne,    ///< single producer, single consumer of its output
  kOneToMany,   ///< producer's output read by several consumers
  kManyToOne,   ///< consumer reads outputs of several producers
  kNoneToOne,   ///< consumer reads only base inputs
  kOneToNone,   ///< producer's output is terminal
  kMixed,       ///< combination of the above
};

const char* SubgraphTypeName(SubgraphType t);

/// Classifies the neighbourhood of consumer job `consumer_id` with respect
/// to its producers.
SubgraphType ClassifyConsumer(const Plan& plan, const std::string& consumer_id);

/// Classifies the neighbourhood of producer job `producer_id` with respect
/// to its consumers.
SubgraphType ClassifyProducer(const Plan& plan, const std::string& producer_id);

/// True if `producer_id` -> `consumer_id` is a strict one-to-one subgraph:
/// the consumer reads (only) datasets produced by the producer, and every
/// job-consumed output of the producer is read only by the consumer.
bool IsOneToOne(const Plan& plan, const std::string& producer_id,
                const std::string& consumer_id);

/// True if the two jobs can run concurrently (no directed path either way).
bool ConcurrentlyRunnable(const Plan& plan, const std::string& a,
                          const std::string& b);

/// Dataset ids read by both jobs (the horizontal packing shared-scan
/// precondition).
std::vector<std::string> SharedInputs(const Plan& plan, const std::string& a,
                                      const std::string& b);

}  // namespace stubby

#include "workflow/serialize.h"

namespace stubby {

namespace {

// ---------------------------------------------------------------------------
// Small building blocks
// ---------------------------------------------------------------------------

Json ValueToJson(const Value& v) {
  Json arr = Json::Array();
  if (v.is_int()) {
    arr.Append("i");
    arr.Append(v.AsInt());
  } else if (v.is_double()) {
    arr.Append("d");
    arr.Append(v.AsDouble());
  } else {
    arr.Append("s");
    arr.Append(v.AsString());
  }
  return arr;
}

Result<Value> ValueFromJson(const Json& j) {
  if (!j.is_array() || j.size() != 2 || !j.items()[0].is_string()) {
    return Status::InvalidArgument("bad value encoding");
  }
  const std::string& tag = j.items()[0].AsString();
  if (tag == "i") return Value(j.items()[1].AsInt());
  if (tag == "d") return Value(j.items()[1].AsNumber());
  if (tag == "s") return Value(j.items()[1].AsString());
  return Status::InvalidArgument("unknown value tag '" + tag + "'");
}

}  // namespace

Json RowToJson(const Row& row) {
  Json arr = Json::Array();
  for (const Value& v : row.values()) arr.Append(ValueToJson(v));
  return arr;
}

Result<Row> RowFromJson(const Json& j) {
  Row row;
  for (const Json& v : j.items()) {
    STUBBY_ASSIGN_OR_RETURN(Value value, ValueFromJson(v));
    row.Append(std::move(value));
  }
  return row;
}

namespace {

Json StringsToJson(const std::vector<std::string>& v) {
  Json arr = Json::Array();
  for (const auto& s : v) arr.Append(s);
  return arr;
}

std::vector<std::string> StringsFromJson(const Json* j) {
  std::vector<std::string> out;
  if (j == nullptr || !j->is_array()) return out;
  for (const Json& s : j->items()) {
    if (s.is_string()) out.push_back(s.AsString());
  }
  return out;
}

Json FieldSetToJson(const FieldSet& fs) {
  Json arr = Json::Array();
  for (const auto& f : fs) arr.Append(f);
  return arr;
}

std::optional<FieldSet> FieldSetFromJson(const Json* j) {
  if (j == nullptr || !j->is_array()) return std::nullopt;
  FieldSet fs;
  for (const Json& s : j->items()) {
    if (s.is_string()) fs.insert(s.AsString());
  }
  return fs;
}

Json PartitionSpecToJson(const PartitionSpec& p) {
  Json j = Json::Object();
  j["type"] = PartitionTypeName(p.type);
  j["fields"] = StringsToJson(p.partition_fields);
  j["sort"] = StringsToJson(p.sort_fields);
  if (!p.split_points.empty()) {
    Json splits = Json::Array();
    for (const Row& r : p.split_points) splits.Append(RowToJson(r));
    j["splits"] = std::move(splits);
  }
  if (!p.split_points_from.empty()) j["splits_from"] = p.split_points_from;
  return j;
}

Result<PartitionSpec> PartitionSpecFromJson(const Json& j) {
  PartitionSpec p;
  p.type = j.GetString("type") == "range" ? PartitionType::kRange
                                          : PartitionType::kHash;
  p.partition_fields = StringsFromJson(j.Find("fields"));
  p.sort_fields = StringsFromJson(j.Find("sort"));
  if (const Json* splits = j.Find("splits"); splits != nullptr) {
    for (const Json& r : splits->items()) {
      STUBBY_ASSIGN_OR_RETURN(Row row, RowFromJson(r));
      p.split_points.push_back(std::move(row));
    }
  }
  p.split_points_from = j.GetString("splits_from");
  return p;
}

}  // namespace

Json LayoutToJson(const Layout& layout) {
  Json j = Json::Object();
  if (layout.partitioning) {
    j["partitioning"] = PartitionSpecToJson(*layout.partitioning);
  }
  if (!layout.order_fields.empty()) {
    j["order"] = StringsToJson(layout.order_fields);
  }
  j["compressed"] = layout.compressed;
  j["block_mb"] = layout.block_mb;
  return j;
}

Result<Layout> LayoutFromJson(const Json& j) {
  Layout layout;
  if (const Json* p = j.Find("partitioning"); p != nullptr) {
    STUBBY_ASSIGN_OR_RETURN(PartitionSpec spec, PartitionSpecFromJson(*p));
    layout.partitioning = std::move(spec);
  }
  layout.order_fields = StringsFromJson(j.Find("order"));
  layout.compressed = j.GetBool("compressed");
  layout.block_mb = j.GetNumber("block_mb", 64.0);
  return layout;
}

namespace {

Json ConfigToJson(const JobConfig& c) {
  Json j = Json::Object();
  j["num_reduce_tasks"] = c.num_reduce_tasks;
  j["io_sort_mb"] = c.io_sort_mb;
  j["io_sort_factor"] = c.io_sort_factor;
  j["use_combiner"] = c.use_combiner;
  j["compress_map_output"] = c.compress_map_output;
  j["compress_output"] = c.compress_output;
  j["split_mb"] = c.split_mb;
  return j;
}

JobConfig ConfigFromJson(const Json& j) {
  JobConfig c;
  c.num_reduce_tasks = static_cast<int>(j.GetNumber("num_reduce_tasks", 1));
  c.io_sort_mb = j.GetNumber("io_sort_mb", 128);
  c.io_sort_factor = static_cast<int>(j.GetNumber("io_sort_factor", 10));
  c.use_combiner = j.GetBool("use_combiner");
  c.compress_map_output = j.GetBool("compress_map_output");
  c.compress_output = j.GetBool("compress_output");
  c.split_mb = j.GetNumber("split_mb", 64);
  return c;
}

Json StatsToJson(const StageStats& s) {
  Json j = Json::Object();
  j["record_selectivity"] = s.record_selectivity;
  j["byte_selectivity"] = s.byte_selectivity;
  j["cpu_per_record"] = s.cpu_per_record;
  j["groups_per_record"] = s.groups_per_record;
  return j;
}

StageStats StatsFromJson(const Json& j) {
  StageStats s;
  s.record_selectivity = j.GetNumber("record_selectivity", 1.0);
  s.byte_selectivity = j.GetNumber("byte_selectivity", 1.0);
  s.cpu_per_record = j.GetNumber("cpu_per_record", 1.0);
  s.groups_per_record = j.GetNumber("groups_per_record", 1.0);
  return s;
}

Json StageToJson(const Stage& s) {
  Json j = Json::Object();
  j["kind"] = s.kind == Stage::Kind::kMap ? "map" : "reduce";
  j["fn"] = s.name();
  if (s.kind == Stage::Kind::kReduce) {
    j["group"] = StringsToJson(s.group_fields);
  }
  if (s.stats) j["stats"] = StatsToJson(*s.stats);
  if (!s.tee_dataset.empty()) j["tee"] = s.tee_dataset;
  return j;
}

Result<Stage> StageFromJson(const Json& j, const FunctionResolver& resolver) {
  Stage s;
  const std::string fn = j.GetString("fn");
  if (j.GetString("kind") == "map") {
    s.kind = Stage::Kind::kMap;
    STUBBY_ASSIGN_OR_RETURN(s.map_fn, resolver.ResolveMap(fn));
  } else {
    s.kind = Stage::Kind::kReduce;
    STUBBY_ASSIGN_OR_RETURN(s.reduce_fn, resolver.ResolveReduce(fn));
    s.group_fields = StringsFromJson(j.Find("group"));
  }
  if (const Json* stats = j.Find("stats"); stats != nullptr) {
    s.stats = StatsFromJson(*stats);
  }
  s.tee_dataset = j.GetString("tee");
  return s;
}

Json HistogramToJson(const KeyHistogram& h) {
  Json j = Json::Object();
  j["field"] = h.field;
  j["min"] = h.min;
  j["max"] = h.max;
  Json buckets = Json::Array();
  for (double b : h.bucket_fractions) buckets.Append(b);
  j["buckets"] = std::move(buckets);
  j["distinct"] = h.distinct;
  j["max_key_fraction"] = h.max_key_fraction;
  if (!h.heavy_hitters.empty()) {
    Json hitters = Json::Array();
    for (const auto& [value, fraction] : h.heavy_hitters) {
      Json pair = Json::Array();
      pair.Append(value);
      pair.Append(fraction);
      hitters.Append(std::move(pair));
    }
    j["heavy_hitters"] = std::move(hitters);
  }
  return j;
}

KeyHistogram HistogramFromJson(const Json& j) {
  KeyHistogram h;
  h.field = j.GetString("field");
  h.min = j.GetNumber("min");
  h.max = j.GetNumber("max");
  if (const Json* buckets = j.Find("buckets"); buckets != nullptr) {
    for (const Json& b : buckets->items()) {
      h.bucket_fractions.push_back(b.AsNumber());
    }
  }
  h.distinct = static_cast<uint64_t>(j.GetNumber("distinct"));
  h.max_key_fraction = j.GetNumber("max_key_fraction");
  if (const Json* hitters = j.Find("heavy_hitters"); hitters != nullptr) {
    for (const Json& pair : hitters->items()) {
      if (pair.is_array() && pair.size() == 2) {
        h.heavy_hitters.emplace_back(pair.items()[0].AsNumber(),
                                     pair.items()[1].AsNumber());
      }
    }
  }
  return h;
}

Json AnnotationsToJson(const JobAnnotations& a) {
  Json j = Json::Object();
  if (a.schema) {
    Json s = Json::Object();
    auto put = [&](const char* key, const std::optional<FieldSet>& fs) {
      if (fs) s[key] = FieldSetToJson(*fs);
    };
    put("k1", a.schema->k1);
    put("v1", a.schema->v1);
    put("k2", a.schema->k2);
    put("v2", a.schema->v2);
    put("k3", a.schema->k3);
    put("v3", a.schema->v3);
    j["schema"] = std::move(s);
  }
  if (a.filter) {
    Json f = Json::Object();
    f["field"] = a.filter->field;
    f["lo"] = a.filter->lo;
    f["hi"] = a.filter->hi;
    j["filter"] = std::move(f);
  }
  if (a.join) {
    Json jn = Json::Object();
    Json filterable = Json::Array();
    for (size_t i : a.join->filterable_inputs) {
      filterable.Append(static_cast<uint64_t>(i));
    }
    jn["filterable"] = std::move(filterable);
    j["join"] = std::move(jn);
  }
  if (a.profile) {
    Json p = Json::Object();
    p["avg_input_record_bytes"] = a.profile->avg_input_record_bytes;
    p["combine_selectivity"] = a.profile->combine_selectivity;
    p["combine_cpu_per_record"] = a.profile->combine_cpu_per_record;
    p["k2_distinct_groups"] = a.profile->k2_distinct_groups;
    p["k2_max_group_fraction"] = a.profile->k2_max_group_fraction;
    Json hists = Json::Array();
    for (const auto& h : a.profile->key_histograms) {
      hists.Append(HistogramToJson(h));
    }
    p["histograms"] = std::move(hists);
    j["profile"] = std::move(p);
  }
  return j;
}

JobAnnotations AnnotationsFromJson(const Json& j) {
  JobAnnotations a;
  if (const Json* s = j.Find("schema"); s != nullptr) {
    SchemaAnnotation sa;
    sa.k1 = FieldSetFromJson(s->Find("k1"));
    sa.v1 = FieldSetFromJson(s->Find("v1"));
    sa.k2 = FieldSetFromJson(s->Find("k2"));
    sa.v2 = FieldSetFromJson(s->Find("v2"));
    sa.k3 = FieldSetFromJson(s->Find("k3"));
    sa.v3 = FieldSetFromJson(s->Find("v3"));
    a.schema = sa;
  }
  if (const Json* f = j.Find("filter"); f != nullptr) {
    FilterAnnotation fa;
    fa.field = f->GetString("field");
    fa.lo = f->GetNumber("lo");
    fa.hi = f->GetNumber("hi");
    a.filter = fa;
  }
  if (const Json* jn = j.Find("join"); jn != nullptr) {
    JoinAnnotation ja;
    if (const Json* f = jn->Find("filterable"); f != nullptr) {
      for (const Json& i : f->items()) {
        ja.filterable_inputs.push_back(static_cast<size_t>(i.AsNumber()));
      }
    }
    a.join = ja;
  }
  if (const Json* p = j.Find("profile"); p != nullptr) {
    ProfileAnnotation pa;
    pa.avg_input_record_bytes = p->GetNumber("avg_input_record_bytes", 100.0);
    pa.combine_selectivity = p->GetNumber("combine_selectivity", 1.0);
    pa.combine_cpu_per_record = p->GetNumber("combine_cpu_per_record", 0.3);
    pa.k2_distinct_groups = p->GetNumber("k2_distinct_groups");
    pa.k2_max_group_fraction = p->GetNumber("k2_max_group_fraction");
    if (const Json* hists = p->Find("histograms"); hists != nullptr) {
      for (const Json& h : hists->items()) {
        pa.key_histograms.push_back(HistogramFromJson(h));
      }
    }
    a.profile = pa;
  }
  return a;
}

}  // namespace

// ---------------------------------------------------------------------------
// PlanFunctionResolver
// ---------------------------------------------------------------------------

PlanFunctionResolver::PlanFunctionResolver(const Plan& plan) {
  auto harvest_stage = [&](const Stage& s) {
    if (s.kind == Stage::Kind::kMap) {
      maps_.emplace(s.map_fn->name(), s.map_fn);
    } else {
      reduces_.emplace(s.reduce_fn->name(), s.reduce_fn);
    }
  };
  for (const auto& [jid, job] : plan.jobs()) {
    for (const Branch& b : job.branches) {
      for (const BranchInput& in : b.inputs) {
        for (const Stage& s : in.map_stages) harvest_stage(s);
      }
      for (const Stage& s : b.merged_map_stages) harvest_stage(s);
      for (const Stage& s : b.reduce_stages) harvest_stage(s);
      if (b.combiner != nullptr) {
        combines_.emplace(b.combiner->name(), b.combiner);
      }
    }
  }
}

Result<std::shared_ptr<MapFn>> PlanFunctionResolver::ResolveMap(
    const std::string& name) const {
  auto it = maps_.find(name);
  if (it == maps_.end()) {
    return Status::NotFound("map function '" + name + "'");
  }
  return it->second;
}

Result<std::shared_ptr<ReduceFn>> PlanFunctionResolver::ResolveReduce(
    const std::string& name) const {
  auto it = reduces_.find(name);
  if (it == reduces_.end()) {
    return Status::NotFound("reduce function '" + name + "'");
  }
  return it->second;
}

Result<std::shared_ptr<CombineFn>> PlanFunctionResolver::ResolveCombine(
    const std::string& name) const {
  auto it = combines_.find(name);
  if (it == combines_.end()) {
    return Status::NotFound("combine function '" + name + "'");
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Plan -> JSON
// ---------------------------------------------------------------------------

Json PlanToJson(const Plan& plan) {
  Json root = Json::Object();
  root["format"] = "stubby-plan";
  root["version"] = 1;

  const ClusterSpec& c = plan.cluster();
  Json cluster = Json::Object();
  cluster["num_nodes"] = c.num_nodes;
  cluster["map_slots_per_node"] = c.map_slots_per_node;
  cluster["reduce_slots_per_node"] = c.reduce_slots_per_node;
  root["cluster"] = std::move(cluster);

  Json datasets = Json::Array();
  for (const auto& [id, ds] : plan.datasets()) {
    Json d = Json::Object();
    d["id"] = id;
    d["schema"] = StringsToJson(ds.schema.fields());
    d["layout"] = LayoutToJson(ds.layout);
    d["base_input"] = ds.is_base_input;
    d["workflow_output"] = ds.is_workflow_output;
    if (!ds.materialized_from.empty()) {
      d["materialized_from"] = ds.materialized_from;
    }
    Json ann = Json::Object();
    if (ds.annotation.schema) {
      ann["schema"] = StringsToJson(ds.annotation.schema->fields());
    }
    if (ds.annotation.layout) {
      ann["layout"] = LayoutToJson(*ds.annotation.layout);
    }
    if (ds.annotation.num_records) {
      ann["num_records"] = *ds.annotation.num_records;
    }
    if (ds.annotation.bytes) ann["bytes"] = *ds.annotation.bytes;
    if (ds.annotation.num_partitions) {
      ann["num_partitions"] = *ds.annotation.num_partitions;
    }
    d["annotation"] = std::move(ann);
    datasets.Append(std::move(d));
  }
  root["datasets"] = std::move(datasets);

  Json jobs = Json::Array();
  for (const auto& [jid, job] : plan.jobs()) {
    Json j = Json::Object();
    j["id"] = jid;
    j["config"] = ConfigToJson(job.config);
    Json cond = Json::Object();
    cond["partition_frozen"] = job.conditions.partition_frozen;
    if (job.conditions.num_reduce_fixed) {
      cond["num_reduce_fixed"] = *job.conditions.num_reduce_fixed;
    }
    cond["bloom_transfer"] = job.conditions.bloom_transfer;
    j["conditions"] = std::move(cond);

    Json branches = Json::Array();
    for (const Branch& b : job.branches) {
      Json bj = Json::Object();
      bj["tag"] = b.tag;
      Json inputs = Json::Array();
      for (const BranchInput& in : b.inputs) {
        Json ij = Json::Object();
        ij["dataset"] = in.dataset_id;
        Json stages = Json::Array();
        for (const Stage& s : in.map_stages) stages.Append(StageToJson(s));
        ij["stages"] = std::move(stages);
        ij["aligned"] = in.aligned;
        if (!in.prune_partitions.empty()) {
          Json prune = Json::Array();
          for (int p : in.prune_partitions) prune.Append(p);
          ij["prune"] = std::move(prune);
          ij["prune_fraction"] = in.prune_fraction;
        }
        inputs.Append(std::move(ij));
      }
      bj["inputs"] = std::move(inputs);
      if (b.merge_mode()) {
        Json merged = Json::Array();
        for (const Stage& s : b.merged_map_stages) {
          merged.Append(StageToJson(s));
        }
        bj["merged_stages"] = std::move(merged);
        bj["merge_schema"] = StringsToJson(b.merge_schema.fields());
        bj["merge_sort"] = StringsToJson(b.merge_sort_fields);
      }
      bj["map_output_schema"] = StringsToJson(b.map_output_schema.fields());
      if (!b.map_only()) {
        Json reduce = Json::Array();
        for (const Stage& s : b.reduce_stages) reduce.Append(StageToJson(s));
        bj["reduce_stages"] = std::move(reduce);
        bj["partition"] = PartitionSpecToJson(b.partition);
      }
      if (b.bloom) {
        Json bl = Json::Object();
        bl["build_input"] = static_cast<uint64_t>(b.bloom->build_input);
        Json probes = Json::Array();
        for (size_t p : b.bloom->probe_inputs) {
          probes.Append(static_cast<uint64_t>(p));
        }
        bl["probe_inputs"] = std::move(probes);
        bl["key_fields"] = StringsToJson(b.bloom->key_fields);
        bl["bits_log2"] = b.bloom->bits_log2;
        bl["num_hashes"] = b.bloom->num_hashes;
        bl["est_pass_fraction"] = b.bloom->est_pass_fraction;
        bj["bloom"] = std::move(bl);
      }
      if (b.combiner != nullptr) bj["combiner"] = b.combiner->name();
      if (b.preserved_partition) {
        bj["preserved_partition"] =
            PartitionSpecToJson(*b.preserved_partition);
      }
      bj["output"] = b.output_dataset;
      bj["annotations"] = AnnotationsToJson(b.annotations);
      branches.Append(std::move(bj));
    }
    j["branches"] = std::move(branches);
    jobs.Append(std::move(j));
  }
  root["jobs"] = std::move(jobs);
  return root;
}

// ---------------------------------------------------------------------------
// JSON -> Plan
// ---------------------------------------------------------------------------

Result<Plan> PlanFromJson(const Json& json,
                          const FunctionResolver& resolver) {
  if (json.GetString("format") != "stubby-plan") {
    return Status::InvalidArgument("not a stubby-plan document");
  }
  ClusterSpec cluster;
  if (const Json* c = json.Find("cluster"); c != nullptr) {
    cluster.num_nodes = static_cast<int>(c->GetNumber("num_nodes", 51));
    cluster.map_slots_per_node =
        static_cast<int>(c->GetNumber("map_slots_per_node", 3));
    cluster.reduce_slots_per_node =
        static_cast<int>(c->GetNumber("reduce_slots_per_node", 2));
  }
  Plan plan(cluster);

  const Json* datasets = json.Find("datasets");
  if (datasets == nullptr || !datasets->is_array()) {
    return Status::InvalidArgument("missing datasets");
  }
  for (const Json& d : datasets->items()) {
    DatasetVertex v;
    v.id = d.GetString("id");
    v.schema = Schema(StringsFromJson(d.Find("schema")));
    if (const Json* layout = d.Find("layout"); layout != nullptr) {
      STUBBY_ASSIGN_OR_RETURN(v.layout, LayoutFromJson(*layout));
    }
    v.is_base_input = d.GetBool("base_input");
    v.is_workflow_output = d.GetBool("workflow_output");
    v.materialized_from = d.GetString("materialized_from");
    if (const Json* ann = d.Find("annotation"); ann != nullptr) {
      if (const Json* s = ann->Find("schema"); s != nullptr) {
        v.annotation.schema = Schema(StringsFromJson(s));
      }
      if (const Json* layout = ann->Find("layout"); layout != nullptr) {
        STUBBY_ASSIGN_OR_RETURN(Layout l, LayoutFromJson(*layout));
        v.annotation.layout = std::move(l);
      }
      if (const Json* n = ann->Find("num_records"); n != nullptr) {
        v.annotation.num_records = static_cast<uint64_t>(n->AsNumber());
      }
      if (const Json* b = ann->Find("bytes"); b != nullptr) {
        v.annotation.bytes = static_cast<uint64_t>(b->AsNumber());
      }
      if (const Json* p = ann->Find("num_partitions"); p != nullptr) {
        v.annotation.num_partitions = static_cast<int>(p->AsNumber());
      }
    }
    STUBBY_RETURN_NOT_OK(plan.AddDataset(std::move(v)));
  }

  const Json* jobs = json.Find("jobs");
  if (jobs == nullptr || !jobs->is_array()) {
    return Status::InvalidArgument("missing jobs");
  }
  for (const Json& j : jobs->items()) {
    JobVertex job;
    job.id = j.GetString("id");
    if (const Json* c = j.Find("config"); c != nullptr) {
      job.config = ConfigFromJson(*c);
    }
    if (const Json* cond = j.Find("conditions"); cond != nullptr) {
      job.conditions.partition_frozen = cond->GetBool("partition_frozen");
      if (const Json* n = cond->Find("num_reduce_fixed"); n != nullptr) {
        job.conditions.num_reduce_fixed = static_cast<int>(n->AsNumber());
      }
      job.conditions.bloom_transfer = cond->GetBool("bloom_transfer");
    }
    const Json* branches = j.Find("branches");
    if (branches == nullptr) {
      return Status::InvalidArgument("job without branches");
    }
    for (const Json& bj : branches->items()) {
      Branch b;
      b.tag = bj.GetString("tag");
      if (const Json* inputs = bj.Find("inputs"); inputs != nullptr) {
        for (const Json& ij : inputs->items()) {
          BranchInput in;
          in.dataset_id = ij.GetString("dataset");
          if (const Json* stages = ij.Find("stages"); stages != nullptr) {
            for (const Json& sj : stages->items()) {
              STUBBY_ASSIGN_OR_RETURN(Stage s, StageFromJson(sj, resolver));
              in.map_stages.push_back(std::move(s));
            }
          }
          in.aligned = ij.GetBool("aligned");
          if (const Json* prune = ij.Find("prune"); prune != nullptr) {
            for (const Json& p : prune->items()) {
              in.prune_partitions.push_back(static_cast<int>(p.AsNumber()));
            }
            in.prune_fraction = ij.GetNumber("prune_fraction", 1.0);
          }
          b.inputs.push_back(std::move(in));
        }
      }
      if (const Json* merged = bj.Find("merged_stages"); merged != nullptr) {
        for (const Json& sj : merged->items()) {
          STUBBY_ASSIGN_OR_RETURN(Stage s, StageFromJson(sj, resolver));
          b.merged_map_stages.push_back(std::move(s));
        }
        b.merge_schema = Schema(StringsFromJson(bj.Find("merge_schema")));
        b.merge_sort_fields = StringsFromJson(bj.Find("merge_sort"));
      }
      b.map_output_schema =
          Schema(StringsFromJson(bj.Find("map_output_schema")));
      if (const Json* reduce = bj.Find("reduce_stages"); reduce != nullptr) {
        for (const Json& sj : reduce->items()) {
          STUBBY_ASSIGN_OR_RETURN(Stage s, StageFromJson(sj, resolver));
          b.reduce_stages.push_back(std::move(s));
        }
      }
      if (const Json* p = bj.Find("partition"); p != nullptr) {
        STUBBY_ASSIGN_OR_RETURN(b.partition, PartitionSpecFromJson(*p));
      }
      if (const Json* c = bj.Find("combiner"); c != nullptr) {
        STUBBY_ASSIGN_OR_RETURN(b.combiner,
                                resolver.ResolveCombine(c->AsString()));
      }
      if (const Json* p = bj.Find("preserved_partition"); p != nullptr) {
        STUBBY_ASSIGN_OR_RETURN(PartitionSpec spec,
                                PartitionSpecFromJson(*p));
        b.preserved_partition = std::move(spec);
      }
      if (const Json* bl = bj.Find("bloom"); bl != nullptr) {
        BloomTransferSpec spec;
        spec.build_input = static_cast<size_t>(bl->GetNumber("build_input"));
        if (const Json* probes = bl->Find("probe_inputs");
            probes != nullptr) {
          for (const Json& p : probes->items()) {
            spec.probe_inputs.push_back(static_cast<size_t>(p.AsNumber()));
          }
        }
        spec.key_fields = StringsFromJson(bl->Find("key_fields"));
        spec.bits_log2 = static_cast<int>(bl->GetNumber("bits_log2", 20));
        spec.num_hashes = static_cast<int>(bl->GetNumber("num_hashes", 6));
        spec.est_pass_fraction = bl->GetNumber("est_pass_fraction", 1.0);
        b.bloom = std::move(spec);
      }
      b.output_dataset = bj.GetString("output");
      if (const Json* ann = bj.Find("annotations"); ann != nullptr) {
        b.annotations = AnnotationsFromJson(*ann);
      }
      job.branches.push_back(std::move(b));
    }
    STUBBY_RETURN_NOT_OK(plan.AddJob(std::move(job)));
  }
  STUBBY_RETURN_NOT_OK(plan.Validate());
  return plan;
}

std::string ExportPlan(const Plan& plan) { return PlanToJson(plan).Dump(2); }

Result<Plan> ImportPlan(const std::string& text,
                        const FunctionResolver& resolver) {
  STUBBY_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
  return PlanFromJson(json, resolver);
}

}  // namespace stubby

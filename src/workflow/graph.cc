#include "workflow/graph.h"

#include <algorithm>
#include <set>

namespace stubby {

Stage Stage::Map(std::shared_ptr<MapFn> fn, std::optional<StageStats> stats) {
  Stage s;
  s.kind = Kind::kMap;
  s.map_fn = std::move(fn);
  s.stats = std::move(stats);
  return s;
}

Stage Stage::Reduce(std::shared_ptr<ReduceFn> fn,
                    std::vector<std::string> group_fields,
                    std::optional<StageStats> stats) {
  Stage s;
  s.kind = Kind::kReduce;
  s.reduce_fn = std::move(fn);
  s.group_fields = std::move(group_fields);
  s.stats = std::move(stats);
  return s;
}

Result<Schema> BranchInput::MapOutputSchema(const Schema& input_schema) const {
  Schema cur = input_schema;
  for (const Stage& s : map_stages) {
    if (s.kind == Stage::Kind::kMap) {
      // Black-box check: the declared input schema of the function must be
      // satisfiable from the current stream schema.
      cur = s.map_fn->output_schema();
    } else {
      for (const auto& g : s.group_fields) {
        if (!cur.Contains(g)) {
          return Status::FailedPrecondition(
              "reduce stage '" + s.name() + "' groups on '" + g +
              "' absent from stream schema " + cur.ToString());
        }
      }
      cur = s.reduce_fn->output_schema();
    }
  }
  return cur;
}

std::vector<std::string> Branch::GroupFields() const {
  for (const Stage& s : reduce_stages) {
    if (s.kind == Stage::Kind::kReduce) return s.group_fields;
  }
  return {};
}

Result<Schema> Branch::OutputSchema(const Schema& input_schema) const {
  Schema cur = map_output_schema;
  if (merge_mode()) {
    cur = merge_schema;
    for (const Stage& s : merged_map_stages) cur = s.output_schema();
  } else if (inputs.size() == 1) {
    STUBBY_ASSIGN_OR_RETURN(cur, inputs[0].MapOutputSchema(input_schema));
  }
  for (const Stage& s : reduce_stages) cur = s.output_schema();
  return cur;
}

bool JobVertex::map_only() const {
  return std::all_of(branches.begin(), branches.end(),
                     [](const Branch& b) { return b.map_only(); });
}

std::vector<std::string> JobVertex::InputDatasets() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const Branch& b : branches) {
    for (const BranchInput& in : b.inputs) {
      if (seen.insert(in.dataset_id).second) out.push_back(in.dataset_id);
    }
    // Runtime-resolved split points create a data dependency too.
    if (!b.partition.split_points_from.empty() &&
        seen.insert(b.partition.split_points_from).second) {
      out.push_back(b.partition.split_points_from);
    }
  }
  return out;
}

std::vector<std::string> JobVertex::OutputDatasets() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  auto add = [&](const std::string& id) {
    if (!id.empty() && seen.insert(id).second) out.push_back(id);
  };
  for (const Branch& b : branches) {
    for (const BranchInput& in : b.inputs) {
      for (const Stage& s : in.map_stages) add(s.tee_dataset);
    }
    for (const Stage& s : b.merged_map_stages) add(s.tee_dataset);
    for (const Stage& s : b.reduce_stages) add(s.tee_dataset);
    add(b.output_dataset);
  }
  return out;
}

Result<const Branch*> JobVertex::SoleBranch() const {
  if (branches.size() != 1) {
    return Status::FailedPrecondition("job '" + id +
                                      "' is horizontally packed");
  }
  return &branches[0];
}

int JobVertex::EffectiveReduceTasks() const {
  if (map_only()) return 0;
  if (conditions.num_reduce_fixed) return *conditions.num_reduce_fixed;
  // Range partitioning with explicit split points fixes the count.
  for (const Branch& b : branches) {
    if (!b.map_only() && b.partition.FixesNumPartitions() &&
        !b.partition.split_points.empty()) {
      return b.partition.NumRangePartitions();
    }
  }
  return std::max(1, config.num_reduce_tasks);
}

std::vector<int> CanonicalPrunePartitions(const std::vector<int>& prune) {
  std::vector<int> canonical = prune;
  std::sort(canonical.begin(), canonical.end());
  canonical.erase(std::unique(canonical.begin(), canonical.end()),
                  canonical.end());
  return canonical;
}

std::vector<InputGroup> GroupBranchInputs(const JobVertex& job) {
  std::vector<InputGroup> groups;
  for (size_t bi = 0; bi < job.branches.size(); ++bi) {
    const Branch& b = job.branches[bi];
    if (b.merge_mode()) continue;  // merge-mode branches form their own tasks
    for (size_t ii = 0; ii < b.inputs.size(); ++ii) {
      const BranchInput& in = b.inputs[ii];
      std::vector<int> prune = CanonicalPrunePartitions(in.prune_partitions);
      InputGroup* group = nullptr;
      for (auto& g : groups) {
        if (g.dataset_id == in.dataset_id && g.aligned == in.aligned &&
            g.prune_partitions == prune) {
          group = &g;
          break;
        }
      }
      if (group == nullptr) {
        groups.push_back(InputGroup{in.dataset_id, in.aligned,
                                    std::move(prune), in.prune_fraction,
                                    {}});
        group = &groups.back();
      }
      group->subscribers.emplace_back(bi, ii);
    }
  }
  return groups;
}

Layout DeriveOutputLayout(const Branch& branch, const JobConfig& config,
                          const Schema& output_schema) {
  Layout layout;
  layout.compressed = config.compress_output;
  if (branch.map_only() && !branch.preserved_partition) {
    // Map-only outputs inherit nothing in general: each map task writes one
    // block. Merge-mode branches with co-aligned inputs preserve the input
    // partitioning (task t reads partition t, writes partition t) and
    // record it in preserved_partition.
    return layout;
  }
  // Partitioning/order fields survive only if they exist under the same
  // names in the output schema.
  const PartitionSpec& p = branch.map_only() ? *branch.preserved_partition
                                             : branch.partition;
  bool fields_survive =
      !p.partition_fields.empty() &&
      std::all_of(p.partition_fields.begin(), p.partition_fields.end(),
                  [&](const std::string& f) {
                    return output_schema.Contains(f);
                  });
  if (fields_survive) {
    PartitionSpec out = p;
    // Keep only the leading run of sort fields that survive in the output.
    std::vector<std::string> order;
    for (const auto& f : p.sort_fields) {
      if (!output_schema.Contains(f)) break;
      order.push_back(f);
    }
    out.sort_fields = order;
    layout.partitioning = out;
    layout.order_fields = order;
  }
  return layout;
}

}  // namespace stubby

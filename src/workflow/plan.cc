#include "workflow/plan.h"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>

#include "common/strings.h"
#include "mr/bloom_filter.h"

namespace stubby {

namespace {

size_t CountBloomProbeStages(const std::vector<Stage>& stages) {
  size_t n = 0;
  for (const Stage& s : stages) {
    if (s.kind == Stage::Kind::kMap &&
        dynamic_cast<const BloomProbeMapFn*>(s.map_fn.get()) != nullptr) {
      ++n;
    }
  }
  return n;
}

/// Structural integrity of a branch's BloomTransferSpec: a reduce-side,
/// non-merge branch whose build and probe inputs exist and are disjoint,
/// key fields live in the map output schema (hashes are computed post-map
/// on both sides), the filter layout is in range, and exactly the probe
/// inputs carry exactly one probe stage each.
Status ValidateBloomSpec(const std::string& jid, const Branch& b) {
  const BloomTransferSpec& spec = *b.bloom;
  if (b.map_only()) {
    return Status::Internal("job '" + jid +
                            "': bloom transfer on a map-only branch");
  }
  if (b.merge_mode()) {
    return Status::Internal("job '" + jid +
                            "': bloom transfer on a merge-mode branch");
  }
  if (spec.build_input >= b.inputs.size()) {
    return Status::Internal("job '" + jid + "': bloom build input " +
                            std::to_string(spec.build_input) +
                            " out of range");
  }
  if (spec.probe_inputs.empty()) {
    return Status::Internal("job '" + jid + "': bloom spec has no probes");
  }
  std::set<size_t> probes;
  for (size_t pi : spec.probe_inputs) {
    if (pi >= b.inputs.size() || pi == spec.build_input) {
      return Status::Internal("job '" + jid + "': bloom probe input " +
                              std::to_string(pi) + " invalid");
    }
    if (!probes.insert(pi).second) {
      return Status::Internal("job '" + jid + "': duplicate bloom probe " +
                              std::to_string(pi));
    }
  }
  if (spec.key_fields.empty()) {
    return Status::Internal("job '" + jid + "': bloom spec has no keys");
  }
  for (const std::string& f : spec.key_fields) {
    if (!b.map_output_schema.Contains(f)) {
      return Status::Internal("job '" + jid + "': bloom key field '" + f +
                              "' missing from map output schema");
    }
  }
  if (spec.bits_log2 < 10 || spec.bits_log2 > 30 || spec.num_hashes < 1 ||
      spec.num_hashes > 8) {
    return Status::Internal("job '" + jid + "': bloom layout out of range");
  }
  for (size_t ii = 0; ii < b.inputs.size(); ++ii) {
    const size_t want = probes.count(ii) ? 1 : 0;
    const size_t got = CountBloomProbeStages(b.inputs[ii].map_stages);
    if (got != want) {
      return Status::Internal(
          "job '" + jid + "': input " + std::to_string(ii) + " carries " +
          std::to_string(got) + " bloom probe stages, expected " +
          std::to_string(want));
    }
  }
  return Status::OK();
}

}  // namespace

Status Plan::AddJob(JobVertex job) {
  if (jobs_.count(job.id)) {
    return Status::AlreadyExists("job '" + job.id + "' already in plan");
  }
  jobs_.emplace(job.id, std::move(job));
  return Status::OK();
}

Status Plan::AddDataset(DatasetVertex dataset) {
  if (datasets_.count(dataset.id)) {
    return Status::AlreadyExists("dataset '" + dataset.id +
                                 "' already in plan");
  }
  datasets_.emplace(dataset.id, std::move(dataset));
  return Status::OK();
}

void Plan::RemoveJob(const std::string& id) { jobs_.erase(id); }
void Plan::RemoveDataset(const std::string& id) { datasets_.erase(id); }

void Plan::RemoveOrphanDatasets() {
  std::set<std::string> referenced;
  for (const auto& [jid, job] : jobs_) {
    for (const auto& d : job.InputDatasets()) referenced.insert(d);
    for (const auto& d : job.OutputDatasets()) referenced.insert(d);
  }
  for (auto it = datasets_.begin(); it != datasets_.end();) {
    const DatasetVertex& d = it->second;
    if (!d.is_base_input && !d.is_workflow_output &&
        !referenced.count(d.id)) {
      it = datasets_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<const JobVertex*> Plan::GetJob(const std::string& id) const {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("job '" + id + "'");
  return &it->second;
}

Result<JobVertex*> Plan::GetMutableJob(const std::string& id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("job '" + id + "'");
  return &it->second;
}

Result<const DatasetVertex*> Plan::GetDataset(const std::string& id) const {
  auto it = datasets_.find(id);
  if (it == datasets_.end()) return Status::NotFound("dataset '" + id + "'");
  return &it->second;
}

Result<DatasetVertex*> Plan::GetMutableDataset(const std::string& id) {
  auto it = datasets_.find(id);
  if (it == datasets_.end()) return Status::NotFound("dataset '" + id + "'");
  return &it->second;
}

std::string Plan::ProducerOf(const std::string& dataset_id) const {
  for (const auto& [jid, job] : jobs_) {
    for (const auto& out : job.OutputDatasets()) {
      if (out == dataset_id) return jid;
    }
  }
  return "";
}

std::vector<std::string> Plan::ConsumersOf(
    const std::string& dataset_id) const {
  std::vector<std::string> out;
  for (const auto& [jid, job] : jobs_) {
    for (const auto& in : job.InputDatasets()) {
      if (in == dataset_id) {
        out.push_back(jid);
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> Plan::UpstreamJobs(const std::string& job_id) const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  auto job = GetJob(job_id);
  if (!job.ok()) return out;
  for (const auto& in : (*job)->InputDatasets()) {
    std::string p = ProducerOf(in);
    if (!p.empty() && seen.insert(p).second) out.push_back(p);
  }
  return out;
}

std::vector<std::string> Plan::DownstreamJobs(
    const std::string& job_id) const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  auto job = GetJob(job_id);
  if (!job.ok()) return out;
  for (const auto& o : (*job)->OutputDatasets()) {
    for (const auto& c : ConsumersOf(o)) {
      if (seen.insert(c).second) out.push_back(c);
    }
  }
  return out;
}

Result<std::vector<std::string>> Plan::TopologicalOrder() const {
  std::map<std::string, int> in_degree;
  std::map<std::string, std::vector<std::string>> edges;
  for (const auto& [jid, job] : jobs_) in_degree[jid] = 0;
  for (const auto& [jid, job] : jobs_) {
    for (const auto& c : DownstreamJobs(jid)) {
      edges[jid].push_back(c);
      in_degree[c] += 1;
    }
  }
  std::deque<std::string> ready;
  for (const auto& [jid, deg] : in_degree) {
    if (deg == 0) ready.push_back(jid);
  }
  std::vector<std::string> order;
  while (!ready.empty()) {
    std::string j = ready.front();
    ready.pop_front();
    order.push_back(j);
    for (const auto& c : edges[j]) {
      if (--in_degree[c] == 0) ready.push_back(c);
    }
  }
  if (order.size() != jobs_.size()) {
    return Status::Internal("workflow graph has a cycle");
  }
  return order;
}

bool Plan::HasPath(const std::string& a, const std::string& b) const {
  if (a == b) return true;
  std::set<std::string> visited;
  std::deque<std::string> queue{a};
  while (!queue.empty()) {
    std::string j = queue.front();
    queue.pop_front();
    if (!visited.insert(j).second) continue;
    for (const auto& c : DownstreamJobs(j)) {
      if (c == b) return true;
      queue.push_back(c);
    }
  }
  return false;
}

Status Plan::Validate() const {
  // Each dataset produced by at most one job.
  std::map<std::string, std::string> producer;
  for (const auto& [jid, job] : jobs_) {
    if (job.branches.empty()) {
      return Status::Internal("job '" + jid + "' has no branches");
    }
    for (const auto& out : job.OutputDatasets()) {
      auto [it, inserted] = producer.emplace(out, jid);
      if (!inserted) {
        return Status::Internal("dataset '" + out + "' produced by both '" +
                                it->second + "' and '" + jid + "'");
      }
      if (!datasets_.count(out)) {
        return Status::Internal("job '" + jid + "' writes unknown dataset '" +
                                out + "'");
      }
      auto ds = GetDataset(out);
      if ((*ds)->is_base_input) {
        return Status::Internal("job '" + jid +
                                "' writes base input dataset '" + out + "'");
      }
    }
  }

  for (const auto& [jid, job] : jobs_) {
    std::set<std::string> tags;
    for (const Branch& b : job.branches) {
      if (!tags.insert(b.tag).second) {
        return Status::Internal("job '" + jid + "' has duplicate branch tag '" +
                                b.tag + "'");
      }
      if (b.inputs.empty()) {
        return Status::Internal("branch '" + b.tag + "' of job '" + jid +
                                "' has no inputs");
      }
      const Schema& per_input_target =
          b.merge_mode() ? b.merge_schema : b.map_output_schema;
      for (const BranchInput& in : b.inputs) {
        auto ds = GetDataset(in.dataset_id);
        if (!ds.ok()) {
          return Status::Internal("job '" + jid + "' reads unknown dataset '" +
                                  in.dataset_id + "'");
        }
        // Schema must flow through the map-side stages onto the declared
        // target schema.
        auto map_out = in.MapOutputSchema((*ds)->schema);
        if (!map_out.ok()) return map_out.status();
        if (*map_out != per_input_target) {
          return Status::Internal(
              "branch '" + b.tag + "' of job '" + jid + "': input '" +
              in.dataset_id + "' map pipeline yields " + map_out->ToString() +
              " but branch expects " + per_input_target.ToString());
        }
        // Grouped stages on the map side need partition-aligned reads.
        bool has_grouped = std::any_of(
            in.map_stages.begin(), in.map_stages.end(),
            [](const Stage& s) { return s.kind == Stage::Kind::kReduce; });
        if (has_grouped && !in.aligned) {
          return Status::Internal("branch '" + b.tag + "' of job '" + jid +
                                  "': grouped map-side stage on unaligned "
                                  "input '" +
                                  in.dataset_id + "'");
        }
        if (b.merge_mode() && !in.aligned) {
          return Status::Internal("branch '" + b.tag + "' of job '" + jid +
                                  "': merged stages require aligned input '" +
                                  in.dataset_id + "'");
        }
      }
      if (b.merge_mode()) {
        // Merged stages: the merged stream is sorted on merge_sort_fields;
        // each grouped merged stage must group on a prefix of that order.
        for (const auto& f : b.merge_sort_fields) {
          if (!b.merge_schema.Contains(f)) {
            return Status::Internal("job '" + jid + "': merge sort field '" +
                                    f + "' missing from merge schema");
          }
        }
        Schema cur = b.merge_schema;
        bool first_grouped = true;
        for (const Stage& s : b.merged_map_stages) {
          if (s.kind == Stage::Kind::kReduce) {
            for (const auto& g : s.group_fields) {
              if (!cur.Contains(g)) {
                return Status::Internal(
                    "job '" + jid + "': merged stage '" + s.name() +
                    "' groups on '" + g + "' absent from stream schema");
              }
            }
            if (first_grouped) {
              if (s.group_fields.size() > b.merge_sort_fields.size() ||
                  !std::equal(s.group_fields.begin(), s.group_fields.end(),
                              b.merge_sort_fields.begin())) {
                return Status::Internal(
                    "job '" + jid + "': merged grouping (" +
                    Join(s.group_fields, ",") +
                    ") is not a prefix of the merge sort order (" +
                    Join(b.merge_sort_fields, ",") + ")");
              }
              first_grouped = false;
            }
          }
          cur = s.output_schema();
        }
        if (cur != b.map_output_schema) {
          return Status::Internal(
              "branch '" + b.tag + "' of job '" + jid +
              "': merged stages yield " + cur.ToString() +
              " but branch declares " + b.map_output_schema.ToString());
        }
      }
      if (b.bloom) {
        STUBBY_RETURN_NOT_OK(ValidateBloomSpec(jid, b));
      } else {
        for (size_t ii = 0; ii < b.inputs.size(); ++ii) {
          if (CountBloomProbeStages(b.inputs[ii].map_stages) != 0) {
            return Status::Internal("job '" + jid +
                                    "': bloom probe stage without a "
                                    "BloomTransferSpec on the branch");
          }
        }
      }
      if (!b.map_only()) {
        if (b.partition.partition_fields.empty()) {
          return Status::Internal("branch '" + b.tag + "' of job '" + jid +
                                  "' has a reduce side but no partition "
                                  "fields");
        }
        for (const auto& f : b.partition.partition_fields) {
          if (!b.map_output_schema.Contains(f)) {
            return Status::Internal("job '" + jid + "': partition field '" +
                                    f + "' missing from map output schema " +
                                    b.map_output_schema.ToString());
          }
        }
        for (const auto& f : b.partition.sort_fields) {
          if (!b.map_output_schema.Contains(f)) {
            return Status::Internal("job '" + jid + "': sort field '" + f +
                                    "' missing from map output schema");
          }
        }
        // A range spec must fit within the job's effective reduce-task
        // count: Partitioner::Make rejects specs with more partitions than
        // reduce tasks, so a plan violating this cannot execute. The two can
        // diverge when conditions.num_reduce_fixed (which takes precedence)
        // pins a smaller count than split_points+1.
        if (b.partition.FixesNumPartitions() &&
            b.partition.NumRangePartitions() > job.EffectiveReduceTasks()) {
          return Status::Internal(
              "job '" + jid + "': range partition spec defines " +
              std::to_string(b.partition.NumRangePartitions()) +
              " partitions but the job's effective reduce-task count is " +
              std::to_string(job.EffectiveReduceTasks()));
        }
        // Every reduce stage's grouping must be a prefix of the sort order
        // at the point it runs. We check the first stage (later stages are
        // checked structurally by the transformations that created them).
        std::vector<std::string> group = b.GroupFields();
        if (group.size() > b.partition.sort_fields.size() ||
            !std::equal(group.begin(), group.end(),
                        b.partition.sort_fields.begin())) {
          return Status::Internal(
              "job '" + jid + "': reduce grouping (" + Join(group, ",") +
              ") is not a prefix of the sort order (" +
              Join(b.partition.sort_fields, ",") + ")");
        }
        // Schema must flow through the reduce-side stages.
        Schema cur = b.map_output_schema;
        for (const Stage& s : b.reduce_stages) {
          if (s.kind == Stage::Kind::kReduce) {
            for (const auto& g : s.group_fields) {
              if (!cur.Contains(g)) {
                return Status::Internal("job '" + jid + "': reduce stage '" +
                                        s.name() + "' groups on '" + g +
                                        "' absent from stream schema " +
                                        cur.ToString());
              }
            }
          }
          cur = s.output_schema();
        }
        auto out_ds = GetDataset(b.output_dataset);
        if (!out_ds.ok()) {
          return Status::Internal("branch '" + b.tag + "' of job '" + jid +
                                  "' writes unknown dataset '" +
                                  b.output_dataset + "'");
        }
        if (cur != (*out_ds)->schema) {
          return Status::Internal(
              "branch '" + b.tag + "' of job '" + jid + "' produces " +
              cur.ToString() + " but dataset '" + b.output_dataset +
              "' declares " + (*out_ds)->schema.ToString());
        }
      } else {
        auto out_ds = GetDataset(b.output_dataset);
        if (!out_ds.ok()) {
          return Status::Internal("branch '" + b.tag + "' of job '" + jid +
                                  "' writes unknown dataset '" +
                                  b.output_dataset + "'");
        }
        if (b.map_output_schema != (*out_ds)->schema) {
          return Status::Internal(
              "map-only branch '" + b.tag + "' of job '" + jid +
              "' produces " + b.map_output_schema.ToString() +
              " but dataset '" + b.output_dataset + "' declares " +
              (*out_ds)->schema.ToString());
        }
      }
    }
  }

  // Acyclicity.
  auto order = TopologicalOrder();
  if (!order.ok()) return order.status();
  return Status::OK();
}

std::string Plan::ToString() const {
  std::ostringstream os;
  auto order = TopologicalOrder();
  std::vector<std::string> ids;
  if (order.ok()) {
    ids = *order;
  } else {
    for (const auto& [jid, job] : jobs_) ids.push_back(jid);
  }
  os << "Plan{" << jobs_.size() << " jobs, " << datasets_.size()
     << " datasets}\n";
  for (const auto& jid : ids) {
    const JobVertex& job = jobs_.at(jid);
    os << "  " << jid << (job.map_only() ? " [map-only]" : "") << " cfg{"
       << job.config.ToString() << "}\n";
    for (const Branch& b : job.branches) {
      os << "    branch " << b.tag << ": ";
      bool first = true;
      for (const BranchInput& in : b.inputs) {
        if (!first) os << " + ";
        first = false;
        os << in.dataset_id;
        if (in.aligned) os << "[aligned]";
        if (!in.prune_partitions.empty()) {
          os << "[pruned:" << in.prune_partitions.size() << "]";
        }
        os << " ->";
        for (const Stage& s : in.map_stages) os << " " << s.name();
      }
      if (b.merge_mode()) {
        os << " |merge(" << Join(b.merge_sort_fields, ",") << ")|";
        for (const Stage& s : b.merged_map_stages) os << " " << s.name();
      }
      if (b.bloom) {
        os << " |bloom(build=" << b.inputs[b.bloom->build_input].dataset_id
           << " keys=" << Join(b.bloom->key_fields, ",") << ")|";
      }
      if (!b.map_only()) {
        os << " | " << b.partition.ToString() << " |";
        for (const Stage& s : b.reduce_stages) os << " " << s.name();
      }
      os << " -> " << b.output_dataset << "\n";
    }
  }
  return os.str();
}

}  // namespace stubby
